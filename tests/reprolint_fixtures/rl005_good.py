"""Every public DetectorConfig field is reachable from the CLI layer."""


class DetectorConfig:
    tau: int = 5
    tau_test: int = 5
    bins: int = 10
    histogram_range: object = None  # allow-listed internal field
    _cache: object = None  # private, not part of the surface


def main(args):
    return DetectorConfig(
        tau=args.tau,
        tau_test=args.tau_test,
        bins=args.bins,
    )
