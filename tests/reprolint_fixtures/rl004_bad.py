"""Context-free solver failures that tell the operator nothing."""

from repro.exceptions import CheckpointError, SolverError


def fail():
    raise SolverError("solver failed")  # constant message, no kwargs


def fail_resume():
    raise CheckpointError  # not even a message
