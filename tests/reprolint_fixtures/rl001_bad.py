"""Every way the solver registry invariant can be broken."""

SOLVER_CHOICES = ("linprog", "simplex", "sinkhorn_batch")  # re-listed literal


def run(backend: str = "sinkhorn") -> int:  # unknown default
    if backend == "linprog-batch":  # typo never in the registry
        return 1
    return 0


def add_cli_args(parser):
    parser.add_argument("--emd-backend", choices=("auto", "linprog"))  # re-list


def configure(engine):
    engine.reset(backend="simplexx")  # typo'd keyword argument
