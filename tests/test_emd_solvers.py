"""Tests for the transportation solvers and the linprog EMD backend."""

import numpy as np
import pytest

from repro.emd import (
    solve_emd_linprog,
    solve_transportation,
    solve_unbalanced_transportation,
)
from repro.emd.transportation import TransportPlan, _northwest_corner
from repro.exceptions import ValidationError


class TestNorthwestCorner:
    def test_flow_satisfies_marginals(self):
        supply = np.array([3.0, 5.0])
        demand = np.array([4.0, 4.0])
        flow, basis = _northwest_corner(supply, demand)
        assert np.allclose(flow.sum(axis=1), supply)
        assert np.allclose(flow.sum(axis=0), demand)

    def test_basis_size_is_m_plus_n_minus_1(self):
        supply = np.array([3.0, 5.0, 2.0])
        demand = np.array([4.0, 4.0, 2.0])
        _, basis = _northwest_corner(supply, demand)
        assert len(basis) == 3 + 3 - 1


class TestSolveTransportation:
    def test_trivial_single_cell(self):
        plan = solve_transportation(np.array([[2.0]]), np.array([3.0]), np.array([3.0]))
        assert plan.cost == pytest.approx(6.0)
        assert plan.total_flow == pytest.approx(3.0)

    def test_known_textbook_instance(self):
        # Classic 3x3 transportation example with optimum 39.
        cost = np.array([[8.0, 6.0, 10.0], [9.0, 12.0, 13.0], [14.0, 9.0, 16.0]])
        supply = np.array([2.0, 2.0, 2.0])
        demand = np.array([2.0, 2.0, 2.0])
        plan = solve_transportation(cost, supply, demand)
        reference = solve_emd_linprog(cost, supply, demand)
        assert plan.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_flow_respects_marginals(self):
        cost = np.array([[1.0, 3.0], [2.0, 1.0]])
        supply = np.array([4.0, 6.0])
        demand = np.array([5.0, 5.0])
        plan = solve_transportation(cost, supply, demand)
        assert np.allclose(plan.flow.sum(axis=1), supply, atol=1e-6)
        assert np.allclose(plan.flow.sum(axis=0), demand, atol=1e-4)

    def test_zero_total_mass(self):
        plan = solve_transportation(np.ones((2, 2)), np.zeros(2), np.zeros(2))
        assert plan.cost == 0.0
        assert plan.total_flow == 0.0

    def test_unbalanced_rejected(self):
        with pytest.raises(ValidationError):
            solve_transportation(np.ones((2, 2)), np.array([1.0, 1.0]), np.array([3.0, 3.0]))

    def test_negative_supply_rejected(self):
        with pytest.raises(ValidationError):
            solve_transportation(np.ones((2, 2)), np.array([-1.0, 3.0]), np.array([1.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            solve_transportation(np.ones((2, 3)), np.ones(2), np.ones(2))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_linprog_on_random_balanced_instances(self, seed):
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(2, 9)), int(rng.integers(2, 9))
        cost = rng.uniform(0.0, 10.0, size=(m, n))
        supply = rng.uniform(0.1, 5.0, size=m)
        demand = rng.uniform(0.1, 5.0, size=n)
        demand *= supply.sum() / demand.sum()
        simplex = solve_transportation(cost, supply, demand)
        linprog = solve_emd_linprog(cost, supply, demand)
        assert simplex.cost == pytest.approx(linprog.cost, rel=1e-5, abs=1e-6)

    @pytest.mark.parametrize("seed", range(8))
    def test_final_flows_satisfy_marginals_to_float_precision(self, seed):
        # The epsilon perturbation steers the pivots only; the returned
        # flows are re-derived from the basis tree on the *unperturbed*
        # marginals, so they must match them to float rounding — this is
        # what keeps the simplex inside the cross-solver 1e-9 parity
        # envelope (see tests/test_solver_parity.py).
        rng = np.random.default_rng(200 + seed)
        m, n = int(rng.integers(2, 9)), int(rng.integers(2, 9))
        cost = rng.uniform(0.0, 10.0, size=(m, n))
        supply = rng.uniform(0.1, 5.0, size=m)
        demand = rng.uniform(0.1, 5.0, size=n)
        demand *= supply.sum() / demand.sum()
        plan = solve_transportation(cost, supply, demand)
        np.testing.assert_allclose(plan.flow.sum(axis=1), supply, rtol=0, atol=1e-12)
        np.testing.assert_allclose(plan.flow.sum(axis=0), demand, rtol=0, atol=1e-12)


class TestSolveUnbalanced:
    def test_total_flow_is_smaller_mass(self):
        cost = np.ones((2, 3))
        supply = np.array([2.0, 2.0])
        demand = np.array([5.0, 5.0, 5.0])
        plan = solve_unbalanced_transportation(cost, supply, demand)
        assert plan.total_flow == pytest.approx(4.0)

    def test_balanced_input_delegates(self):
        cost = np.array([[1.0, 2.0], [3.0, 1.0]])
        supply = np.array([1.0, 1.0])
        demand = np.array([1.0, 1.0])
        plan = solve_unbalanced_transportation(cost, supply, demand)
        assert plan.cost == pytest.approx(2.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_linprog_on_random_unbalanced_instances(self, seed):
        rng = np.random.default_rng(100 + seed)
        m, n = int(rng.integers(2, 7)), int(rng.integers(2, 7))
        cost = rng.uniform(0.0, 10.0, size=(m, n))
        supply = rng.uniform(0.1, 5.0, size=m)
        demand = rng.uniform(0.1, 5.0, size=n)
        simplex = solve_unbalanced_transportation(cost, supply, demand)
        linprog = solve_emd_linprog(cost, supply, demand)
        assert simplex.cost == pytest.approx(linprog.cost, rel=1e-5, abs=1e-6)
        assert simplex.total_flow == pytest.approx(linprog.total_flow, rel=1e-6)


class TestLinprogBackend:
    def test_flow_nonnegative(self):
        rng = np.random.default_rng(0)
        cost = rng.uniform(0, 5, size=(4, 3))
        plan = solve_emd_linprog(cost, rng.uniform(1, 2, 4), rng.uniform(1, 2, 3))
        assert np.all(plan.flow >= 0)

    def test_flow_respects_capacity_constraints(self):
        rng = np.random.default_rng(1)
        cost = rng.uniform(0, 5, size=(4, 3))
        supply = rng.uniform(1, 2, 4)
        demand = rng.uniform(1, 2, 3)
        plan = solve_emd_linprog(cost, supply, demand)
        assert np.all(plan.flow.sum(axis=1) <= supply + 1e-8)
        assert np.all(plan.flow.sum(axis=0) <= demand + 1e-8)

    def test_total_flow_equals_min_mass(self):
        cost = np.ones((2, 2))
        plan = solve_emd_linprog(cost, np.array([1.0, 1.0]), np.array([10.0, 10.0]))
        assert plan.total_flow == pytest.approx(2.0)

    def test_zero_mass_short_circuit(self):
        plan = solve_emd_linprog(np.ones((2, 2)), np.zeros(2), np.array([1.0, 1.0]))
        assert plan.cost == 0.0
        assert plan.total_flow == 0.0

    def test_identical_distributions_zero_cost(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        plan = solve_emd_linprog(cost, np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert plan.cost == pytest.approx(0.0, abs=1e-9)

    def test_result_type(self):
        plan = solve_emd_linprog(np.ones((1, 1)), np.array([1.0]), np.array([1.0]))
        assert isinstance(plan, TransportPlan)
