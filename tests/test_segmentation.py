"""Tests for the stream segmentation utilities."""

import numpy as np
import pytest

from repro.bootstrap import ConfidenceInterval
from repro.core import (
    DetectionResult,
    ScorePoint,
    Segment,
    merge_close_alarms,
    segment_from_result,
    segment_stream,
)
from repro.exceptions import ValidationError


class TestMergeCloseAlarms:
    def test_keeps_isolated_alarms(self):
        assert merge_close_alarms([5, 20, 40], min_gap=3) == [5, 20, 40]

    def test_merges_runs_keeping_first(self):
        assert merge_close_alarms([10, 11, 12, 30], min_gap=5) == [10, 30]

    def test_unsorted_input(self):
        assert merge_close_alarms([30, 10, 12], min_gap=5) == [10, 30]

    def test_empty_input(self):
        assert merge_close_alarms([], min_gap=2) == []


class TestSegment:
    def test_length(self):
        assert Segment(start=3, end=8).length == 5

    def test_empty_segment_rejected(self):
        with pytest.raises(ValidationError):
            Segment(start=5, end=5)


class TestSegmentStream:
    def test_no_alarms_single_segment(self):
        segments = segment_stream(10, [])
        assert len(segments) == 1
        assert segments[0].start == 0 and segments[0].end == 10

    def test_segments_partition_the_stream(self):
        segments = segment_stream(20, [5, 12])
        assert [(s.start, s.end) for s in segments] == [(0, 5), (5, 12), (12, 20)]
        assert sum(s.length for s in segments) == 20

    def test_alarms_outside_range_ignored(self):
        segments = segment_stream(10, [0, 10, 25, 4])
        assert [(s.start, s.end) for s in segments] == [(0, 4), (4, 10)]

    def test_close_alarms_merged(self):
        segments = segment_stream(20, [5, 6, 7, 15], min_segment_length=4)
        assert [(s.start, s.end) for s in segments] == [(0, 5), (5, 15), (15, 20)]

    def test_per_segment_statistics(self, rng):
        bags = [rng.normal(0.0, 0.1, size=(10, 2)) for _ in range(5)]
        bags += [rng.normal(4.0, 0.1, size=(10, 2)) for _ in range(5)]
        segments = segment_stream(10, [5], bags=bags)
        assert segments[0].n_observations == 50
        assert np.allclose(segments[0].mean, [0.0, 0.0], atol=0.2)
        assert np.allclose(segments[1].mean, [4.0, 4.0], atol=0.2)

    def test_bags_length_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            segment_stream(5, [2], bags=[rng.normal(size=(3, 1))])


class TestSegmentFromResult:
    def _result(self, alarm_times, tau_test=4):
        points = [
            ScorePoint(
                time=t,
                score=1.0,
                interval=ConfidenceInterval(0.0, 1.0, 0.95),
                alert=t in alarm_times,
            )
            for t in range(4, 20)
        ]
        return DetectionResult(points=points, metadata={"tau_test": tau_test})

    def test_uses_tau_test_as_default_gap(self):
        result = self._result({8, 9, 10, 16})
        segments = segment_from_result(result, 24)
        assert [(s.start, s.end) for s in segments] == [(0, 8), (8, 16), (16, 24)]

    def test_explicit_min_segment_length(self):
        result = self._result({8, 10})
        segments = segment_from_result(result, 20, min_segment_length=1)
        assert [(s.start, s.end) for s in segments] == [(0, 8), (8, 10), (10, 20)]

    def test_end_to_end_with_detector(self, step_change_bags, fast_config):
        from repro import BagChangePointDetector

        result = BagChangePointDetector(fast_config).detect(step_change_bags)
        segments = segment_from_result(result, len(step_change_bags), bags=step_change_bags)
        assert sum(s.length for s in segments) == len(step_change_bags)
        assert len(segments) >= 2
        # The first and last segments straddle the mean shift at index 8.
        assert np.linalg.norm(segments[-1].mean - segments[0].mean) > 3.0
