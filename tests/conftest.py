"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetectorConfig
from repro.signatures import Signature


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_signature():
    """A tiny 2-D signature with three representatives."""
    return Signature(
        positions=np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]]),
        weights=np.array([2.0, 1.0, 3.0]),
        label="small",
    )


@pytest.fixture
def shifted_signature():
    """The same shape as ``small_signature`` but translated by (5, 5)."""
    return Signature(
        positions=np.array([[5.0, 5.0], [6.0, 5.0], [5.0, 7.0]]),
        weights=np.array([2.0, 1.0, 3.0]),
        label="shifted",
    )


@pytest.fixture
def fast_config():
    """Detector configuration tuned for test speed (small bootstrap, exact signatures)."""
    return DetectorConfig(
        tau=4,
        tau_test=4,
        signature_method="exact",
        n_bootstrap=50,
        random_state=0,
    )


@pytest.fixture
def step_change_bags(rng):
    """16 small 2-D bags with a clear mean shift after the 8th bag."""
    bags = [rng.normal(0.0, 1.0, size=(30, 2)) for _ in range(8)]
    bags += [rng.normal(5.0, 1.0, size=(30, 2)) for _ in range(8)]
    return bags


@pytest.fixture
def stationary_bags(rng):
    """16 small 2-D bags drawn from one fixed distribution (no change)."""
    return [rng.normal(0.0, 1.0, size=(30, 2)) for _ in range(16)]
