"""Tests for the darknet traffic simulator and the threshold-sweep curves."""

import numpy as np
import pytest

from repro.datasets import AttackCampaign, DarknetTrafficSimulator, PACKET_FEATURES
from repro.evaluation import best_f1_point, precision_recall_curve, threshold_sweep
from repro.exceptions import ConfigurationError, ValidationError


class TestAttackCampaign:
    def test_valid_kinds(self):
        for kind in ("port_scan", "worm", "backscatter"):
            AttackCampaign(start=0, duration=2, kind=kind)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            AttackCampaign(start=0, duration=2, kind="ddos")

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            AttackCampaign(start=0, duration=0, kind="worm")


class TestDarknetTrafficSimulator:
    def test_stream_length_and_feature_count(self):
        dataset = DarknetTrafficSimulator(40, base_rate=50, campaigns=(), random_state=0).generate()
        assert len(dataset) == 40
        assert dataset.bags[0].shape[1] == len(PACKET_FEATURES)

    def test_change_points_include_onset_and_end(self):
        campaigns = (AttackCampaign(start=10, duration=5, kind="worm"),)
        dataset = DarknetTrafficSimulator(
            30, base_rate=50, campaigns=campaigns, random_state=0
        ).generate()
        assert dataset.change_points == [10, 15]

    def test_attack_windows_have_more_packets(self):
        campaigns = (AttackCampaign(start=10, duration=5, kind="port_scan", intensity=4.0),)
        dataset = DarknetTrafficSimulator(
            20, base_rate=100, campaigns=campaigns, random_state=0
        ).generate()
        during = np.mean([len(dataset.bags[t]) for t in range(10, 15)])
        before = np.mean([len(dataset.bags[t]) for t in range(0, 10)])
        assert during > 2.0 * before

    def test_worm_concentrates_port_distribution(self):
        campaigns = (AttackCampaign(start=5, duration=5, kind="worm", intensity=5.0),)
        dataset = DarknetTrafficSimulator(
            12, base_rate=100, campaigns=campaigns, random_state=0
        ).generate()
        port_std_attack = np.mean([dataset.bags[t][:, 0].std() for t in range(5, 10)])
        port_std_normal = np.mean([dataset.bags[t][:, 0].std() for t in range(0, 5)])
        assert port_std_attack < port_std_normal

    def test_campaign_beyond_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            DarknetTrafficSimulator(
                10, campaigns=(AttackCampaign(start=8, duration=5, kind="worm"),)
            )

    def test_detector_flags_campaign_onset(self):
        campaigns = (AttackCampaign(start=14, duration=8, kind="worm", intensity=4.0),)
        dataset = DarknetTrafficSimulator(
            30, base_rate=120, campaigns=campaigns, random_state=1
        ).generate()
        from repro import BagChangePointDetector

        detector = BagChangePointDetector(
            tau=5, tau_test=5, signature_method="kmeans", n_clusters=6,
            n_bootstrap=60, random_state=0,
        )
        result = detector.detect(dataset.bags)
        assert any(13 <= t <= 18 for t in result.alarm_times)


class TestThresholdSweep:
    def _scores(self):
        times = np.arange(30)
        scores = np.zeros(30)
        scores[10:13] = 5.0
        scores[20:22] = 4.0
        return scores, times, [10, 20]

    def test_low_threshold_high_recall(self):
        scores, times, cps = self._scores()
        points = threshold_sweep(scores, times, cps, tolerance=2, n_thresholds=10)
        assert points[0].recall == 1.0

    def test_high_threshold_no_alarms(self):
        scores, times, cps = self._scores()
        points = threshold_sweep(scores, times, cps, tolerance=2, n_thresholds=10)
        assert points[-1].alarms == 0

    def test_precision_recall_curve_shapes(self):
        scores, times, cps = self._scores()
        thresholds, precision, recall = precision_recall_curve(
            scores, times, cps, tolerance=2, n_thresholds=15
        )
        assert thresholds.shape == precision.shape == recall.shape == (15,)
        assert np.all((0 <= precision) & (precision <= 1))
        assert np.all((0 <= recall) & (recall <= 1))

    def test_best_f1_point_is_perfect_for_single_spike_scores(self):
        # One spike per change point: some threshold isolates exactly those
        # two alarms, giving perfect precision and recall.
        times = np.arange(30)
        scores = np.zeros(30)
        scores[10] = 5.0
        scores[20] = 4.0
        best = best_f1_point(scores, times, [10, 20], tolerance=2, n_thresholds=30)
        assert best.precision == 1.0
        assert best.recall == 1.0

    def test_best_f1_point_trades_off_consecutive_alarms(self):
        # Runs of consecutive alarms around each change cost precision under
        # the one-to-one matching; best F1 still favours full recall here.
        scores, times, cps = self._scores()
        best = best_f1_point(scores, times, cps, tolerance=2, n_thresholds=30)
        assert best.recall == 1.0
        assert 0.3 <= best.precision < 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            threshold_sweep(np.ones(3), np.arange(4), [1])

    def test_invalid_threshold_count_rejected(self):
        with pytest.raises(ValidationError):
            threshold_sweep(np.ones(3), np.arange(3), [1], n_thresholds=1)

    def test_constant_scores_handled(self):
        points = threshold_sweep(np.ones(10), np.arange(10), [5], n_thresholds=5)
        assert len(points) == 5
