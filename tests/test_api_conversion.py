"""Round-trip and validation tests for the sparse/dense converters.

These invariants are detector-independent: any sparse change-point array
must survive ``dense_to_sparse(sparse_to_dense(cps, n)) == cps`` exactly,
and any dense labelling must keep every segment boundary through the
reverse trip.  Property-tested with hypothesis under ``derandomize``
(seeded, reproducible example generation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import dense_to_sparse, sparse_to_dense
from repro.exceptions import ValidationError

SETTINGS = settings(max_examples=200, derandomize=True)


@st.composite
def sparse_changepoints(draw):
    """A sequence length and a valid sparse change-point array for it."""
    n = draw(st.integers(min_value=1, max_value=120))
    if n < 2:
        return n, []
    cps = draw(st.lists(st.integers(min_value=1, max_value=n - 1), unique=True, max_size=n - 1))
    return n, sorted(cps)


@st.composite
def dense_labels(draw):
    """An arbitrary (non-canonical) dense labelling."""
    return draw(
        st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=120)
    )


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #
@SETTINGS
@given(sparse_changepoints())
def test_sparse_dense_sparse_is_identity(case):
    n, cps = case
    labels = sparse_to_dense(cps, n)
    assert labels.shape == (n,)
    np.testing.assert_array_equal(dense_to_sparse(labels), np.asarray(cps, dtype=np.int64))


@SETTINGS
@given(sparse_changepoints())
def test_sparse_to_dense_labels_are_canonical(case):
    n, cps = case
    labels = sparse_to_dense(cps, n)
    assert labels[0] == 0
    steps = np.diff(labels)
    assert set(steps.tolist()) <= {0, 1}, "labels must increase by exactly 1 at each change"
    assert labels.max() == len(cps)


@SETTINGS
@given(dense_labels())
def test_dense_sparse_dense_preserves_boundaries(labels):
    cps = dense_to_sparse(labels)
    canonical = sparse_to_dense(cps, len(labels))
    # The round trip canonicalises the labels but must keep every boundary.
    np.testing.assert_array_equal(dense_to_sparse(canonical), cps)
    arr = np.asarray(labels)
    boundaries = np.nonzero(arr[1:] != arr[:-1])[0] + 1
    np.testing.assert_array_equal(cps, boundaries)


@SETTINGS
@given(dense_labels())
def test_dense_to_sparse_output_is_valid_sparse(labels):
    cps = dense_to_sparse(labels)
    assert cps.dtype == np.int64
    if cps.size:
        assert np.all(np.diff(cps) > 0)
        assert cps[0] >= 1
        assert cps[-1] <= len(labels) - 1


# --------------------------------------------------------------------- #
# Explicit cases
# --------------------------------------------------------------------- #
def test_empty_changepoints_give_single_segment():
    np.testing.assert_array_equal(sparse_to_dense([], 4), np.zeros(4, dtype=np.int64))


def test_known_example():
    labels = sparse_to_dense([2, 5], 7)
    np.testing.assert_array_equal(labels, [0, 0, 1, 1, 1, 2, 2])
    np.testing.assert_array_equal(dense_to_sparse(labels), [2, 5])


def test_non_canonical_labels_still_yield_boundaries():
    np.testing.assert_array_equal(dense_to_sparse([5, 5, -1, -1, 5]), [2, 4])


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "cps, n",
    [
        ([3, 2], 5),          # unsorted
        ([2, 2], 5),          # duplicate
        ([0], 5),             # 0 is not a change point
        ([5], 5),             # n is not a change point
        ([-1], 5),            # negative
        ([[1, 2]], 5),        # not one-dimensional
        ([1.5], 5),           # non-integer
    ],
)
def test_sparse_to_dense_rejects_invalid_changepoints(cps, n):
    with pytest.raises(ValidationError):
        sparse_to_dense(cps, n)


def test_sparse_to_dense_rejects_nonpositive_length():
    with pytest.raises(ValidationError):
        sparse_to_dense([], 0)


@pytest.mark.parametrize("labels", [[], [[0, 1]], [0.5, 1.5]])
def test_dense_to_sparse_rejects_invalid_labels(labels):
    with pytest.raises(ValidationError):
        dense_to_sparse(labels)


def test_float_integral_changepoints_accepted():
    np.testing.assert_array_equal(
        sparse_to_dense(np.array([2.0, 5.0]), 7), [0, 0, 1, 1, 1, 2, 2]
    )
