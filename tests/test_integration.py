"""Integration tests exercising the full pipeline end to end.

These tests reproduce (in miniature) the logic of the paper's experiments:
the motivating Fig. 1 comparison, the Fig. 6 confidence-interval behaviour,
a PAMAP-like activity stream, and the bipartite-graph pipelines of §5.3.
They use reduced sizes so that the whole suite stays fast.
"""

import numpy as np
import pytest

from repro import BagChangePointDetector
from repro.baselines import ChangeFinder, score_on_means
from repro.core import DetectorConfig
from repro.datasets import (
    EnronLikeStream,
    OrganizationalEvent,
    PamapSimulator,
    make_bipartite_stream,
    make_confidence_interval_dataset,
    make_mixture_stream,
)
from repro.emd import emd_matrix
from repro.embedding import classical_mds
from repro.evaluation import match_alarms, run_experiment, score_auc
from repro.graphs import feature_bag_sequences
from repro.signatures import SignatureBuilder


@pytest.mark.integration
class TestMotivatingExample:
    """Miniature version of the paper's Fig. 1."""

    def test_bag_detector_sees_mixture_change_that_means_hide(self):
        dataset = make_mixture_stream(
            steps_per_regime=12, bag_size=150, random_state=0
        )
        detector = BagChangePointDetector(
            tau=4, tau_test=4, signature_method="histogram", bins=24,
            histogram_range=(-12.0, 12.0), n_bootstrap=80, random_state=0,
        )
        result = detector.detect(dataset.bags)
        auc = score_auc(result.scores, result.times, dataset.change_points, tolerance=3)
        assert auc > 0.75  # the bag-based score clearly separates change regions

        # The same stream reduced to sample means carries almost no signal
        # for a mean-based baseline: its score's AUC stays near chance.
        baseline_scores = score_on_means(ChangeFinder(dim=1, discount=0.05), dataset.bags)
        baseline_auc = score_auc(
            baseline_scores[8:], np.arange(8, len(baseline_scores)), dataset.change_points,
            tolerance=3,
        )
        assert baseline_auc < auc


@pytest.mark.integration
class TestConfidenceIntervalBehaviour:
    """Miniature version of the paper's Fig. 6 study."""

    @pytest.fixture(scope="class")
    def config(self):
        return DetectorConfig(
            tau=5, tau_test=5, signature_method="exact", n_bootstrap=80, random_state=0
        )

    def test_dataset4_alert_near_true_change(self, config):
        dataset = make_confidence_interval_dataset(4, random_state=2)
        report = run_experiment(dataset, config, tolerance=3)
        assert report.matching.recall == 1.0

    @pytest.mark.parametrize("dataset_id", [1, 2, 3])
    def test_no_change_datasets_raise_no_alarms(self, config, dataset_id):
        dataset = make_confidence_interval_dataset(dataset_id, random_state=2)
        report = run_experiment(dataset, config, tolerance=3)
        assert int(report.detection.alerts.sum()) == 0

    def test_noisy_dataset_has_wider_intervals_than_clean_one(self, config):
        clean = make_confidence_interval_dataset(4, random_state=2)
        noisy = make_confidence_interval_dataset(2, random_state=2)
        detector = BagChangePointDetector(config)
        width_clean = np.mean(
            detector.detect(clean.bags).upper - detector.detect(clean.bags).lower
        )
        width_noisy = np.mean(
            detector.detect(noisy.bags).upper - detector.detect(noisy.bags).lower
        )
        assert width_noisy > 0.0 and width_clean > 0.0

    def test_emd_matrix_and_mds_produce_two_clusters_for_dataset4(self):
        dataset = make_confidence_interval_dataset(4, random_state=2)
        builder = SignatureBuilder("exact")
        signatures = builder.build_sequence(dataset.bags)
        matrix = emd_matrix(signatures)
        embedding = classical_mds(matrix, n_components=2).embedding
        first, second = embedding[:10], embedding[10:]
        between = np.linalg.norm(first.mean(axis=0) - second.mean(axis=0))
        within = max(first.std(), second.std())
        assert between > 2.0 * within


@pytest.mark.integration
class TestActivityMonitoring:
    """Miniature version of the paper's PAMAP experiment (Fig. 7)."""

    def test_alerts_concentrate_on_activity_transitions(self):
        simulator = PamapSimulator(random_state=0, sampling_rate=15)
        dataset = simulator.simulate_subject(
            protocol=(1, 8, 11, 2), bags_per_activity=[8, 8, 8, 8]
        )
        detector = BagChangePointDetector(
            tau=4, tau_test=4, signature_method="kmeans", n_clusters=5,
            n_bootstrap=60, random_state=0,
        )
        result = detector.detect(dataset.bags)
        matching = match_alarms(
            result.alarm_times.tolist(), dataset.change_points, tolerance=3
        )
        assert matching.recall >= 2.0 / 3.0
        assert matching.precision >= 0.5


@pytest.mark.integration
class TestBipartiteGraphPipelines:
    """Miniature version of the §5.3 and §5.4 graph experiments."""

    def test_edge_weight_features_detect_traffic_change(self):
        dataset = make_bipartite_stream(1, n_steps=60, mean_nodes=40, random_state=0)
        sequences = feature_bag_sequences(dataset.graphs)
        detector = BagChangePointDetector(
            tau=5, tau_test=5, signature_method="histogram", bins=20,
            n_bootstrap=60, random_state=0,
        )
        # Feature 5 (out-weights) is one the paper reports as reliably
        # detecting every change.
        result = detector.detect(sequences[5])
        auc = score_auc(result.scores, result.times, dataset.change_points, tolerance=4)
        assert auc > 0.6

    def test_enron_like_events_raise_scores(self):
        events = (
            OrganizationalEvent(15, "crisis", traffic_factor=2.5, restructuring=0.5),
        )
        stream = EnronLikeStream(
            n_weeks=30, events=events, random_state=0,
            mean_senders=40, mean_recipients=40,
        )
        dataset = stream.generate()
        sequences = feature_bag_sequences(dataset.graphs)
        detector = BagChangePointDetector(
            tau=5, tau_test=3, signature_method="histogram", bins=20,
            n_bootstrap=60, random_state=0,
        )
        result = detector.detect(sequences[6])
        # The score at the event week should be among the largest observed.
        event_scores = result.scores[(result.times >= 15) & (result.times <= 18)]
        assert event_scores.max() >= np.quantile(result.scores, 0.8)
