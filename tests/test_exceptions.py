"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    EmptyBagError,
    NotFittedError,
    ReproError,
    SolverError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ValidationError, EmptyBagError, SolverError, NotFittedError, ConfigurationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_solver_error_is_runtime_error(self):
        assert issubclass(SolverError, RuntimeError)

    def test_not_fitted_error_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_empty_bag_error_is_validation_error(self):
        assert issubclass(EmptyBagError, ValidationError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise EmptyBagError("empty")
