"""Tests for ``tools.bench_trend`` — the CI perf-trend consolidator.

Covers the three layers: payload discovery/parsing against the
``benchmarks/conftest.write_benchmark_json`` schema, metric
classification (seconds / speedup / parity, with tolerance keys
excluded), and the rendered markdown plus CLI exit codes.
"""

import json
from pathlib import Path

import pytest

from tools.bench_trend import (
    BenchPayload,
    PayloadError,
    discover,
    flatten,
    load_payload,
    main,
    parity_metrics,
    render_markdown,
    seconds_metrics,
    speedup_metrics,
)


def write_payload(path: Path, benchmark: str, results: dict, *, passed: bool = True) -> Path:
    payload = {
        "benchmark": benchmark,
        "passed": passed,
        "results": results,
        "argv": ["--quick"],
        "versions": {"python": "3.12.0", "numpy": "2.0.0"},
    }
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def stream_payload(tmp_path):
    return write_payload(
        tmp_path / "BENCH_stream_service.json",
        "stream_service",
        {
            "supervised_seconds": 1.5,
            "independent_seconds": 1.25,
            "max_parity_diff": 2.5e-16,
            "overhead_limit": 0.5,
            "batch_drain": {
                "linprog_batch": {
                    "speedup": 4.8,
                    "speedup_limit": 2.0,
                    "parity_diff": 4.4e-16,
                    "parity_tol": 1e-12,
                    "batched_seconds": 1.1,
                },
                "sinkhorn_batch": {
                    "speedup": 9.1,
                    "parity_diff": 0.0,
                    "batched_seconds": 5.6,
                },
            },
        },
    )


class TestDiscover:
    def test_directory_scan_sorted(self, tmp_path):
        b = write_payload(tmp_path / "BENCH_b.json", "b", {})
        a = write_payload(tmp_path / "BENCH_a.json", "a", {})
        (tmp_path / "notes.json").write_text("{}")  # not BENCH_*: ignored
        assert discover([tmp_path]) == [a.resolve(), b.resolve()]

    def test_explicit_file_plus_directory_deduplicated(self, tmp_path):
        a = write_payload(tmp_path / "BENCH_a.json", "a", {})
        assert discover([a, tmp_path]) == [a.resolve()]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(PayloadError, match="no such file"):
            discover([tmp_path / "absent"])


class TestLoadPayload:
    def test_round_trip(self, stream_payload):
        payload = load_payload(stream_payload)
        assert payload.benchmark == "stream_service"
        assert payload.passed is True
        assert payload.versions == {"python": "3.12.0", "numpy": "2.0.0"}
        assert payload.metrics["batch_drain.linprog_batch.speedup"] == 4.8

    def test_malformed_json_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(PayloadError, match="unreadable"):
            load_payload(bad)

    def test_wrong_schema_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"results": {}}))
        with pytest.raises(PayloadError, match="benchmark"):
            load_payload(bad)

    def test_non_scalar_leaves_survive_as_json(self, tmp_path):
        path = write_payload(tmp_path / "BENCH_x.json", "x", {"shape": [3, 4], "gate": None})
        metrics = load_payload(path).metrics
        assert metrics["shape"] == "[3, 4]"
        assert metrics["gate"] == "null"


class TestMetricClassification:
    def test_flatten_uses_dotted_keys(self):
        flat = flatten({"a": {"b": {"c": 1.0}}, "d": True})
        assert flat == {"a.b.c": 1.0, "d": True}

    def test_seconds_speedup_parity_split(self, stream_payload):
        metrics = load_payload(stream_payload).metrics
        assert set(seconds_metrics(metrics)) == {
            "supervised_seconds",
            "independent_seconds",
            "batch_drain.linprog_batch.batched_seconds",
            "batch_drain.sinkhorn_batch.batched_seconds",
        }
        # Gates/tolerances (speedup_limit, parity_tol) must not be
        # mistaken for measurements.
        assert set(speedup_metrics(metrics)) == {
            "batch_drain.linprog_batch.speedup",
            "batch_drain.sinkhorn_batch.speedup",
        }
        assert set(parity_metrics(metrics)) == {
            "max_parity_diff",
            "batch_drain.linprog_batch.parity_diff",
            "batch_drain.sinkhorn_batch.parity_diff",
        }

    def test_booleans_are_not_numbers(self):
        metrics = flatten({"parity_ok": True, "speedup_ok": True, "run_seconds": True})
        assert parity_metrics(metrics) == {}
        assert speedup_metrics(metrics) == {}
        assert seconds_metrics(metrics) == {}


class TestRenderMarkdown:
    def test_summary_picks_worst_case(self, stream_payload):
        report = render_markdown([load_payload(stream_payload)], label="abc123")
        assert "Commit: `abc123`" in report
        # Worst parity is the largest error; worst speedup the smallest.
        assert "4.4e-16 (parity_diff)" in report
        assert "4.8 (speedup)" in report
        # Total timed seconds = 1.5 + 1.25 + 1.1 + 5.6.
        assert "| 9.45 |" in report

    def test_failed_benchmark_flagged(self, tmp_path):
        path = write_payload(tmp_path / "BENCH_f.json", "f", {"run_seconds": 1.0}, passed=False)
        report = render_markdown([load_payload(path)])
        assert "**FAIL**" in report

    def test_benchmark_without_perf_axes_renders_placeholders(self):
        payload = BenchPayload(
            path=Path("BENCH_x.json"), benchmark="x", passed=True, metrics={}, versions={}
        )
        report = render_markdown([payload])
        assert "| x | pass | — | — | — |" in report


class TestMain:
    def test_writes_output_file(self, tmp_path, stream_payload, capsys):
        out = tmp_path / "BENCH_TREND.md"
        assert main([str(stream_payload.parent), "--output", str(out)]) == 0
        report = out.read_text()
        assert report.startswith("# Benchmark perf trend")
        assert "stream_service" in report
        assert "stream_service" in capsys.readouterr().out

    def test_no_payloads_is_exit_1(self, tmp_path):
        assert main([str(tmp_path)]) == 1

    def test_malformed_payload_is_exit_2(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        assert main([str(tmp_path)]) == 2
