"""Tests for the cross-stream batched drain and the drain-path bugfixes.

Covers:

* the two-phase push contract (``prepare``/``commit``/``rollback``) the
  batched drain is built on;
* batched-vs-sequential drain parity ≤ 1e-12 across every solver
  backend and every ``on_stream_error`` policy, including interleaved
  faults and a poison pair injected into a cross-stream stacked solve
  (sibling streams sharing the stack must commit bit-identically);
* the block-backpressure regression: inline drains must not discard the
  emitted :class:`~repro.core.ScorePoint` — it is buffered and delivered
  by the next ``drain()``;
* the per-cause shed metrics (``n_shed_backpressure``,
  ``n_shed_quarantined``, ``n_discarded_on_close``; ``n_shed`` stays
  their sum);
* the documented attempts-not-emissions semantics of ``drain(limit=N)``
  when a stream faults mid-round.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core import DetectorConfig, OnlineBagDetector
from repro.emd import EMD_SOLVERS
from repro.emd.batch import PairwiseEMDEngine
from repro.exceptions import ConfigurationError, SolverError, ValidationError
from repro.service import StreamSupervisor, SupervisorPolicy
from repro.testing.faults import inject_transient_solver_error

TOL = 1e-12
N_STREAMS = 3


def make_bags(n, shift=3.0, seed=0, size=15):
    r = np.random.default_rng(seed)
    return [
        r.normal(size=(size, 2)) + (shift if i >= n // 2 else 0.0) for i in range(n)
    ]


def service_config(**overrides):
    defaults = dict(
        tau=3,
        tau_test=3,
        signature_method="kmeans",
        n_clusters=4,
        n_bootstrap=20,
        random_state=11,
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


def backend_config(backend, **overrides):
    """A config exercising ``backend`` on histogram signatures."""
    defaults = dict(
        tau=3,
        tau_test=3,
        signature_method="histogram",
        bins=3,
        histogram_range=[(-6.0, 10.0), (-6.0, 10.0)],
        emd_backend=backend,
        sinkhorn_tol=1e-6,
        n_bootstrap=20,
        random_state=7,
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


def _same(a, b, tol=TOL):
    if np.isnan(a) and np.isnan(b):
        return True
    return abs(a - b) <= tol


def assert_histories_match(points_a, points_b, tol=TOL):
    """Full score-history equality: times, scores, bounds, gammas, alerts."""
    assert [p.time for p in points_a] == [p.time for p in points_b]
    for p, q in zip(points_a, points_b):
        assert _same(p.score, q.score, tol), (p.time, p.score, q.score)
        assert _same(p.interval.lower, q.interval.lower, tol)
        assert _same(p.interval.upper, q.interval.upper, tol)
        assert _same(p.gamma, q.gamma, tol)
        assert p.alert == q.alert


def stream_histories(supervisor):
    return {
        name: list(supervisor.detector(name).history.points)
        for name in supervisor.stream_names
    }


POISON_OFFSET = 1e6


def poison_bag(size=15):
    """A bag whose kmeans signature is unmistakable (centres ~ 1e6)."""
    return np.full((size, 2), POISON_OFFSET)


@contextmanager
def inject_poison_marker(threshold=1e5):
    """Fail any solve whose pair list contains a poison-marker signature.

    Marker pairs are identified by signature *content* (a support point
    beyond ``threshold``), not by label — stream detectors label their
    signatures with per-stream bag indices, which collide across
    streams, so a content marker is the only way to poison exactly one
    stream's pairs inside a cross-stream stacked solve.  The raised
    :class:`~repro.exceptions.SolverError` carries the marker pairs'
    positions in the failing call (``pair_indices``), exactly like the
    engine's own batched-group failure translation.
    """
    original = PairwiseEMDEngine.compute_pairs

    def wrapper(self, pairs):
        pairs = list(pairs)
        positions = [
            k
            for k, (a, b) in enumerate(pairs)
            if max(
                float(np.max(np.abs(a.positions))),
                float(np.max(np.abs(b.positions))),
            )
            > threshold
        ]
        if positions:
            raise SolverError(
                f"injected poison marker at positions {positions}",
                pair_indices=tuple(positions),
            )
        return original(self, pairs)

    PairwiseEMDEngine.compute_pairs = wrapper
    try:
        yield
    finally:
        PairwiseEMDEngine.compute_pairs = original


def run_rounds(supervisor, per_stream_bags, drain_each_round=True):
    """Submit one bag per stream per round, draining between rounds."""
    emitted = []
    n_rounds = len(next(iter(per_stream_bags.values())))
    for t in range(n_rounds):
        for name, bags in per_stream_bags.items():
            supervisor.submit(name, bags[t])
        if drain_each_round:
            emitted.extend(supervisor.drain())
    emitted.extend(supervisor.drain())
    return emitted


# ---------------------------------------------------------------------- #
# Policy plumbing
# ---------------------------------------------------------------------- #
class TestPolicy:
    def test_batch_drain_defaults_off(self):
        assert SupervisorPolicy().batch_drain is False

    def test_batch_drain_must_be_bool(self):
        with pytest.raises(ConfigurationError, match="batch_drain"):
            SupervisorPolicy(batch_drain="yes")


# ---------------------------------------------------------------------- #
# Two-phase push contract
# ---------------------------------------------------------------------- #
class TestPreparedPush:
    def test_prepare_commit_matches_push(self):
        bags = make_bags(14, seed=3)
        pushed = OnlineBagDetector(service_config())
        staged = OnlineBagDetector(service_config())
        for bag in bags:
            pushed.push(bag)
            pending = staged.prepare(bag)
            distances = staged._engine.compute_pairs(list(pending.pairs))
            staged.commit(pending, distances)
        assert_histories_match(pushed.history.points, staged.history.points)
        assert (
            pushed._rng.bit_generator.state == staged._rng.bit_generator.state
        )
        pushed.close()
        staged.close()

    def test_rollback_rewinds_generator_draws(self):
        bags = make_bags(10, seed=4)
        detector = OnlineBagDetector(service_config())
        reference = OnlineBagDetector(service_config())
        for bag in bags[:6]:
            detector.push(bag)
            reference.push(bag)
        pending = detector.prepare(bags[6])
        detector.rollback(pending)
        for bag in bags[6:]:
            detector.push(bag)
            reference.push(bag)
        assert_histories_match(reference.history.points, detector.history.points)
        detector.close()
        reference.close()

    def test_stale_pending_rejected(self):
        bags = make_bags(6, seed=5)
        detector = OnlineBagDetector(service_config())
        pending = detector.prepare(bags[0])
        detector.commit(pending, np.zeros(len(pending.pairs)))
        with pytest.raises(ValidationError, match="pending push"):
            detector.commit(pending, np.zeros(len(pending.pairs)))
        with pytest.raises(ValidationError, match="pending push"):
            detector.rollback(pending)
        detector.close()

    def test_commit_checks_distance_shape(self):
        detector = OnlineBagDetector(service_config())
        detector.push(make_bags(2, seed=6)[0])
        pending = detector.prepare(make_bags(2, seed=6)[1])
        with pytest.raises(ValidationError, match="distances"):
            detector.commit(pending, np.zeros(len(pending.pairs) + 1))
        detector.close()


# ---------------------------------------------------------------------- #
# Batched-vs-sequential parity
# ---------------------------------------------------------------------- #
def _parity_run(config_for, batch, rounds=12, error_policy="strict"):
    policy = SupervisorPolicy(batch_drain=batch, on_stream_error=error_policy)
    supervisor = StreamSupervisor(policy=policy)
    per_stream = {}
    for s in range(N_STREAMS):
        name = f"s{s}"
        supervisor.add_stream(name, config_for(s))
        per_stream[name] = make_bags(rounds, shift=float(s), seed=100 + s)
    emitted = run_rounds(supervisor, per_stream)
    histories = stream_histories(supervisor)
    supervisor.close()
    return emitted, histories


@pytest.mark.parametrize("backend", EMD_SOLVERS)
class TestBatchedDrainParity:
    def test_histogram_streams_match_sequential(self, backend):
        def config_for(_s):
            return backend_config(backend)

        seq_emitted, seq = _parity_run(config_for, batch=False)
        bat_emitted, bat = _parity_run(config_for, batch=True)
        assert seq.keys() == bat.keys()
        for name in seq:
            assert seq[name], f"stream {name} emitted nothing"
            assert_histories_match(seq[name], bat[name])
        assert [name for name, _ in seq_emitted] == [
            name for name, _ in bat_emitted
        ]

    def test_kmeans_streams_match_sequential(self, backend):
        def config_for(s):
            return service_config(emd_backend=backend, random_state=50 + s)

        _, seq = _parity_run(config_for, batch=False)
        _, bat = _parity_run(config_for, batch=True)
        for name in seq:
            assert seq[name]
            assert_histories_match(seq[name], bat[name])


def _interleaved_fault_run(batch, error_policy):
    """Rounds with a scripted transient fault: strict drains retry."""
    policy = SupervisorPolicy(batch_drain=batch, on_stream_error=error_policy)
    supervisor = StreamSupervisor(policy=policy)
    per_stream = {}
    for s in range(N_STREAMS):
        name = f"s{s}"
        supervisor.add_stream(name, service_config(random_state=60 + s))
        per_stream[name] = make_bags(14, shift=float(s), seed=200 + s)
    for t in range(14):
        for name, bags in per_stream.items():
            supervisor.submit(name, bags[t])
        if t in (5, 9):
            # The sequential drain raises (first stream's solve fails,
            # bag requeued); the batched drain survives the single
            # firing because the unattributable group failure falls
            # back to per-stream solves, which run after the budget is
            # exhausted.  Either way no bag may be lost.
            with inject_transient_solver_error(times=1):
                try:
                    supervisor.drain()
                except SolverError:
                    pass
        # The retry (fault cleared) must fully catch up.
        supervisor.drain()
    supervisor.drain()
    histories = stream_histories(supervisor)
    supervisor.close()
    return histories


@pytest.mark.faults
class TestBatchedDrainFaults:
    def test_strict_interleaved_faults_converge_to_sequential(self):
        seq = _interleaved_fault_run(batch=False, error_policy="strict")
        bat = _interleaved_fault_run(batch=True, error_policy="strict")
        for name in seq:
            assert seq[name]
            assert_histories_match(seq[name], bat[name])

    @pytest.mark.parametrize("error_policy", ["degraded", "quarantine"])
    def test_poison_pair_parity_with_sequential(self, error_policy):
        """A poisoned stream takes the policy identically on both paths."""

        def run(batch):
            policy = SupervisorPolicy(
                batch_drain=batch, on_stream_error=error_policy
            )
            supervisor = StreamSupervisor(policy=policy)
            per_stream = {}
            for s in range(N_STREAMS):
                name = f"s{s}"
                supervisor.add_stream(name, service_config(random_state=70 + s))
                per_stream[name] = make_bags(14, shift=float(s), seed=300 + s)
            per_stream["s1"][6] = poison_bag()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with inject_poison_marker():
                    run_rounds(supervisor, per_stream)
            histories = stream_histories(supervisor)
            metrics = supervisor.metrics
            supervisor.close()
            return histories, metrics

        seq, seq_metrics = run(batch=False)
        bat, bat_metrics = run(batch=True)
        for name in seq:
            assert_histories_match(seq[name], bat[name])
        # The poisoned stream actually took the policy, on both paths.
        key = (
            "n_degraded_points"
            if error_policy == "degraded"
            else "n_quarantined"
        )
        assert seq_metrics[key] > 0
        assert seq_metrics[key] == bat_metrics[key]

    def test_poison_in_stacked_solve_leaves_siblings_bit_identical(self):
        """Siblings sharing the failing stacked solve commit unaffected.

        Every active stream's pairs are stacked into one solve per
        round, so the poisoned round's failing call contains the
        sibling streams' pairs too; ``pair_indices`` attribution must
        rescue them bit-identically (compared against unfaulted
        independent detectors), while only the poisoned stream is
        quarantined.
        """
        policy = SupervisorPolicy(batch_drain=True, on_stream_error="quarantine")
        supervisor = StreamSupervisor(policy=policy)
        per_stream = {}
        for s in range(N_STREAMS):
            name = f"s{s}"
            supervisor.add_stream(name, service_config(random_state=80 + s))
            per_stream[name] = make_bags(14, shift=float(s), seed=400 + s)
        per_stream["s1"][7] = poison_bag()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with inject_poison_marker():
                run_rounds(supervisor, per_stream)
        assert supervisor.status("s1") == "quarantined"
        assert supervisor.metrics["n_quarantined"] == 1
        for s in (0, 2):
            name = f"s{s}"
            assert supervisor.status(name) == "active"
            independent = OnlineBagDetector(service_config(random_state=80 + s))
            for bag in per_stream[name]:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector(name).history.points,
            )
            independent.close()
        supervisor.close()

    def test_strict_batched_raise_buffers_round_emissions(self):
        """A strict abort mid-round must not lose the committed points."""
        policy = SupervisorPolicy(batch_drain=True, on_stream_error="strict")
        supervisor = StreamSupervisor(policy=policy)
        per_stream = {}
        for s in range(N_STREAMS):
            name = f"s{s}"
            supervisor.add_stream(name, service_config(random_state=90 + s))
            per_stream[name] = make_bags(12, shift=float(s), seed=500 + s)
        # Warm the windows so the faulted round actually emits points.
        for t in range(9):
            for name, bags in per_stream.items():
                supervisor.submit(name, bags[t])
            supervisor.drain()
        per_stream["s1"][9] = poison_bag()
        for name, bags in per_stream.items():
            supervisor.submit(name, bags[9])
        with inject_poison_marker():
            with pytest.raises(SolverError):
                supervisor.drain()
        # The healthy streams committed before the raise; their points
        # were buffered, not lost, and the poisoned bag was requeued.
        metrics = supervisor.metrics
        assert metrics["n_pending_emissions"] == N_STREAMS - 1
        assert metrics["queue_depths"]["s1"] == 1
        emitted = supervisor.drain()
        names = [name for name, _ in emitted]
        assert names[: N_STREAMS - 1] == ["s0", "s2"]
        assert supervisor.metrics["n_pending_emissions"] == 0
        supervisor.close()

    def test_unattributable_fault_rescues_all_streams(self):
        """A context-free SolverError re-solves every stream alone."""
        policy = SupervisorPolicy(batch_drain=True, on_stream_error="degraded")
        supervisor = StreamSupervisor(policy=policy)
        per_stream = {}
        for s in range(N_STREAMS):
            name = f"s{s}"
            supervisor.add_stream(name, service_config(random_state=30 + s))
            per_stream[name] = make_bags(12, shift=float(s), seed=600 + s)
        for t in range(12):
            for name, bags in per_stream.items():
                supervisor.submit(name, bags[t])
            if t == 6:
                # One firing kills only the stacked solve; the
                # per-stream rescue solves run after the budget is
                # exhausted, so every stream commits normally.
                with inject_transient_solver_error(times=1):
                    supervisor.drain()
            else:
                supervisor.drain()
        supervisor.drain()
        assert supervisor.metrics["n_degraded_points"] == 0
        for s in range(N_STREAMS):
            name = f"s{s}"
            independent = OnlineBagDetector(service_config(random_state=30 + s))
            for bag in per_stream[name]:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector(name).history.points,
            )
            independent.close()
        supervisor.close()


class TestDrainBatchedScheduling:
    def test_drain_batched_works_without_policy_flag(self):
        supervisor = StreamSupervisor(policy=SupervisorPolicy())
        per_stream = {}
        for s in range(2):
            name = f"s{s}"
            supervisor.add_stream(name, service_config(random_state=40 + s))
            per_stream[name] = make_bags(10, seed=700 + s)
        for t in range(10):
            for name, bags in per_stream.items():
                supervisor.submit(name, bags[t])
        emitted = supervisor.drain_batched()
        assert emitted
        for s in range(2):
            name = f"s{s}"
            independent = OnlineBagDetector(service_config(random_state=40 + s))
            for bag in per_stream[name]:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector(name).history.points,
            )
            independent.close()
        supervisor.close()

    def test_drain_batched_respects_limit(self):
        supervisor = StreamSupervisor(
            policy=SupervisorPolicy(), config=service_config()
        )
        for s in range(3):
            supervisor.add_stream(f"s{s}")
        for t in range(4):
            for s in range(3):
                supervisor.submit(f"s{s}", make_bags(4, seed=800 + s)[t])
        supervisor.drain_batched(limit=5)
        depths = supervisor.metrics["queue_depths"]
        assert sum(depths.values()) == 12 - 5
        supervisor.close()

    def test_single_stream_drain_stays_sequential(self):
        """drain(name=...) ignores batch_drain, and still works."""
        supervisor = StreamSupervisor(
            policy=SupervisorPolicy(batch_drain=True), config=service_config()
        )
        supervisor.add_stream("a")
        bags = make_bags(10, seed=900)
        for bag in bags:
            supervisor.submit("a", bag)
        emitted = supervisor.drain("a")
        assert [name for name, _ in emitted] == ["a"] * len(emitted)
        assert supervisor.metrics["queue_depths"]["a"] == 0
        supervisor.close()


# ---------------------------------------------------------------------- #
# Block-backpressure score loss (the headline bugfix)
# ---------------------------------------------------------------------- #
class TestInlineDrainEmissions:
    def test_block_backpressure_loses_no_scores(self):
        """Inline drains buffer their points for the next drain()."""
        bags = make_bags(20, seed=21)

        def run(capacity):
            policy = SupervisorPolicy(backpressure="block", queue_capacity=capacity)
            supervisor = StreamSupervisor(service_config(), policy)
            supervisor.add_stream("a")
            emitted = []
            for bag in bags:
                assert supervisor.submit("a", bag)
            emitted.extend(supervisor.drain())
            supervisor.close()
            return emitted

        throttled = run(capacity=2)
        unthrottled = run(capacity=len(bags))
        assert [name for name, _ in throttled] == [
            name for name, _ in unthrottled
        ]
        assert_histories_match(
            [p for _, p in unthrottled], [p for _, p in throttled]
        )

    def test_inline_points_buffered_then_cleared(self):
        policy = SupervisorPolicy(backpressure="block", queue_capacity=2)
        supervisor = StreamSupervisor(service_config(), policy)
        supervisor.add_stream("a")
        for bag in make_bags(16, seed=22):
            supervisor.submit("a", bag)
        # 14 bags were processed inline; the windows they filled emitted
        # points that only exist in the pending buffer so far.
        buffered = supervisor.metrics["n_pending_emissions"]
        assert buffered > 0
        emitted = supervisor.drain()
        assert len(emitted) == buffered + 2
        assert supervisor.metrics["n_pending_emissions"] == 0
        # Nothing is delivered twice.
        assert supervisor.drain() == []
        supervisor.close()


# ---------------------------------------------------------------------- #
# Per-cause shed metrics
# ---------------------------------------------------------------------- #
class TestShedMetricSplit:
    def test_shed_policy_counts_backpressure_only(self):
        policy = SupervisorPolicy(backpressure="shed", queue_capacity=2)
        with StreamSupervisor(service_config(), policy) as supervisor:
            supervisor.add_stream("a")
            for bag in make_bags(5, seed=23):
                supervisor.submit("a", bag)
            metrics = supervisor.metrics
            assert metrics["n_shed_backpressure"] == 3
            assert metrics["n_shed_quarantined"] == 0
            assert metrics["n_discarded_on_close"] == 0
            assert metrics["n_shed"] == 3

    @pytest.mark.faults
    def test_quarantine_counts_quarantined_only(self):
        policy = SupervisorPolicy(on_stream_error="quarantine")
        with StreamSupervisor(service_config(), policy) as supervisor:
            supervisor.add_stream("a")
            for bag in make_bags(3, seed=24):
                supervisor.submit("a", bag)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with inject_transient_solver_error(times=1):
                    supervisor.drain()
            # The failing bag was consumed by the quarantine; the two
            # queued behind it were shed by it.
            metrics = supervisor.metrics
            assert metrics["n_shed_quarantined"] == 2
            assert metrics["n_shed_backpressure"] == 0
            assert metrics["n_discarded_on_close"] == 0
            # Submissions to the parked stream are quarantine sheds too.
            assert supervisor.submit("a", make_bags(1, seed=25)[0]) is False
            assert supervisor.metrics["n_shed_quarantined"] == 3
            assert supervisor.metrics["n_shed"] == 3

    def test_close_counts_discarded_queues(self):
        supervisor = StreamSupervisor(service_config(), SupervisorPolicy())
        supervisor.add_stream("a")
        for bag in make_bags(3, seed=26):
            supervisor.submit("a", bag)
        supervisor.close()
        assert supervisor.n_discarded_on_close == 3
        assert supervisor.n_shed_backpressure == 0
        assert supervisor.n_shed_quarantined == 0
        assert supervisor.n_shed == 3


# ---------------------------------------------------------------------- #
# drain(limit=N) semantics under mid-round faults
# ---------------------------------------------------------------------- #
class TestDrainLimitSemantics:
    def test_limit_counts_attempts_not_emissions(self):
        with StreamSupervisor(service_config(), SupervisorPolicy()) as supervisor:
            supervisor.add_stream("a")
            for bag in make_bags(4, seed=27):
                supervisor.submit("a", bag)
            # 4 warm-up bags never emit, yet all are consumed by limit.
            emitted = supervisor.drain(limit=4)
            assert emitted == []
            assert supervisor.metrics["queue_depths"]["a"] == 0

    @pytest.mark.faults
    def test_faulting_stream_consumes_limit_without_starving_siblings(self):
        """A mid-round quarantine eats one limit unit, no more.

        The faulting attempt emits nothing but still counts; the
        sibling's attempt in the same round proceeds, so a permanently
        failing stream cannot pin the round-robin loop on itself.
        """
        policy = SupervisorPolicy(on_stream_error="quarantine")
        with StreamSupervisor(service_config(), policy) as supervisor:
            supervisor.add_stream("a")
            supervisor.add_stream("b")
            bags_a = make_bags(2, seed=28)
            bags_b = make_bags(2, seed=29)
            for bag_a, bag_b in zip(bags_a, bags_b):
                supervisor.submit("a", bag_a)
                supervisor.submit("b", bag_b)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with inject_transient_solver_error(times=1):
                    supervisor.drain(limit=2)
            # Round 1: stream a's attempt faulted (quarantining it, no
            # emission) and consumed one unit; stream b's attempt
            # consumed the other.  b's second bag is still queued - the
            # fault did not starve it of its round-1 slot.
            assert supervisor.status("a") == "quarantined"
            assert supervisor.detector("b").n_seen == 1
            assert supervisor.metrics["queue_depths"]["b"] == 1
