"""Tests for the weighted information estimators and weighting schemes."""

import numpy as np
import pytest

from repro.emd import emd
from repro.exceptions import ConfigurationError, ValidationError
from repro.information import (
    EstimatorConfig,
    WeightedInformationEstimator,
    auto_entropy,
    cross_entropy,
    discounted_reference_weights,
    discounted_test_weights,
    information_content,
    normalize_weights,
    resolve_weights,
    uniform_weights,
)
from repro.signatures import Signature


class TestWeightingSchemes:
    def test_uniform_sums_to_one(self):
        assert uniform_weights(5).sum() == pytest.approx(1.0)

    def test_uniform_all_equal(self):
        w = uniform_weights(4)
        assert np.allclose(w, 0.25)

    def test_discounted_reference_sums_to_one(self):
        assert discounted_reference_weights(6).sum() == pytest.approx(1.0)

    def test_discounted_reference_monotone_increasing(self):
        # Chronological ordering: the most recent bag (largest index) has the
        # smallest lag and hence the largest weight.
        w = discounted_reference_weights(5)
        assert np.all(np.diff(w) > 0)

    def test_discounted_reference_proportional_to_inverse_lag(self):
        w = discounted_reference_weights(3)
        expected = np.array([1 / 3, 1 / 2, 1 / 1])
        assert np.allclose(w, expected / expected.sum())

    def test_discounted_test_monotone_decreasing(self):
        w = discounted_test_weights(5)
        assert np.all(np.diff(w) < 0)

    def test_discounted_test_first_weight_largest(self):
        w = discounted_test_weights(4)
        assert w[0] == max(w)

    def test_resolve_uniform(self):
        assert np.allclose(resolve_weights("uniform", 3), uniform_weights(3))

    def test_resolve_discounted_reference_vs_test(self):
        ref = resolve_weights("discounted", 4, is_test=False)
        test = resolve_weights("discounted", 4, is_test=True)
        assert not np.allclose(ref, test)

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_weights("exponential", 3)

    def test_normalize_weights(self):
        assert normalize_weights([2.0, 6.0]).tolist() == [0.25, 0.75]


class TestEstimatorConfig:
    def test_defaults(self):
        config = EstimatorConfig()
        assert config.constant == 0.0
        assert config.dimension == 1.0

    def test_rejects_nonpositive_dimension(self):
        with pytest.raises(ValidationError):
            EstimatorConfig(dimension=0.0)

    def test_rejects_nonpositive_floor(self):
        with pytest.raises(ValidationError):
            EstimatorConfig(min_distance=0.0)


class TestInformationContent:
    def test_manual_value(self):
        distances = np.array([1.0, np.e])
        weights = np.array([0.5, 0.5])
        # 0.5*log(1) + 0.5*log(e) = 0.5
        assert information_content(distances, weights) == pytest.approx(0.5)

    def test_constant_and_dimension_applied(self):
        config = EstimatorConfig(constant=2.0, dimension=3.0)
        value = information_content(np.array([np.e]), np.array([1.0]), config=config)
        assert value == pytest.approx(2.0 + 3.0)

    def test_zero_distance_floored(self):
        value = information_content(np.array([0.0]), np.array([1.0]))
        assert np.isfinite(value)

    def test_weights_renormalised(self):
        d = np.array([2.0, 3.0])
        assert information_content(d, [1.0, 1.0]) == pytest.approx(
            information_content(d, [10.0, 10.0])
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            information_content(np.array([1.0, 2.0]), np.array([1.0]))

    def test_larger_distances_larger_information(self):
        weights = np.array([0.5, 0.5])
        small = information_content(np.array([1.0, 1.0]), weights)
        large = information_content(np.array([5.0, 5.0]), weights)
        assert large > small


class TestAutoEntropy:
    def test_two_point_manual_value(self):
        # With weights (1/2, 1/2): sum over i != j of (0.5*0.5/0.5) log d = log d.
        distance = 3.0
        matrix = np.array([[0.0, distance], [distance, 0.0]])
        assert auto_entropy(matrix, [0.5, 0.5]) == pytest.approx(np.log(distance))

    def test_diagonal_ignored(self):
        matrix = np.array([[99.0, 2.0], [2.0, 99.0]])
        assert auto_entropy(matrix, [0.5, 0.5]) == pytest.approx(np.log(2.0))

    def test_singleton_set_gives_constant(self):
        config = EstimatorConfig(constant=1.5)
        assert auto_entropy(np.zeros((1, 1)), [1.0], config=config) == pytest.approx(1.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            auto_entropy(np.zeros((2, 3)), [0.5, 0.5])

    def test_spread_increases_entropy(self):
        tight = np.array([[0.0, 1.0], [1.0, 0.0]])
        spread = np.array([[0.0, 10.0], [10.0, 0.0]])
        weights = [0.5, 0.5]
        assert auto_entropy(spread, weights) > auto_entropy(tight, weights)


class TestCrossEntropy:
    def test_manual_value(self):
        cross = np.array([[np.e, np.e**2]])
        value = cross_entropy(cross, [1.0], [0.5, 0.5])
        assert value == pytest.approx(1.5)

    def test_symmetry_under_transpose(self):
        rng = np.random.default_rng(0)
        cross = rng.uniform(0.5, 2.0, size=(3, 4))
        wa, wb = uniform_weights(3), uniform_weights(4)
        assert cross_entropy(cross, wa, wb) == pytest.approx(
            cross_entropy(cross.T, wb, wa)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            cross_entropy(np.ones((2, 2)), [0.5, 0.5], [1.0])

    def test_identical_sets_cross_entropy_at_least_auto_entropy(self):
        # Gibbs-like inequality direction for these log-distance estimators:
        # the cross entropy of a set with itself includes the zero diagonal
        # (floored), so it is smaller; compare against a disjoint far set.
        rng = np.random.default_rng(1)
        near = rng.uniform(1.0, 2.0, size=(4, 4))
        near = (near + near.T) / 2
        np.fill_diagonal(near, 0.0)
        far = near + 10.0
        weights = uniform_weights(4)
        assert cross_entropy(far, weights, weights) > auto_entropy(near, weights)


class TestWeightedInformationEstimatorObject:
    def _signatures(self, rng, offset=0.0, n=4):
        return [
            Signature(rng.normal(offset, 1.0, size=(5, 2)), np.ones(5), label=(offset, i))
            for i in range(n)
        ]

    def test_information_content_matches_functional_form(self, rng):
        signatures = self._signatures(rng)
        target = signatures[0]
        weights = uniform_weights(3)
        estimator = WeightedInformationEstimator()
        value = estimator.information_content(target, signatures[1:], weights)
        distances = np.array([emd(s, target) for s in signatures[1:]])
        assert value == pytest.approx(information_content(distances, weights))

    def test_cross_entropy_larger_for_distant_sets(self, rng):
        near = self._signatures(rng, 0.0)
        far = self._signatures(rng, 10.0)
        estimator = WeightedInformationEstimator()
        w = uniform_weights(4)
        assert estimator.cross_entropy(near, w, far, w) > estimator.cross_entropy(
            near, w, near, w
        )

    def test_auto_entropy_finite(self, rng):
        signatures = self._signatures(rng)
        estimator = WeightedInformationEstimator()
        assert np.isfinite(estimator.auto_entropy(signatures, uniform_weights(4)))
