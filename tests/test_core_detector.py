"""Tests for the offline detector, its configuration and result containers."""

import numpy as np
import pytest

from repro.core import (
    BagChangePointDetector,
    BagSequence,
    DetectionResult,
    DetectorConfig,
    ScorePoint,
)
from repro.bootstrap import ConfidenceInterval
from repro.exceptions import ConfigurationError, ValidationError
from repro.signatures import Signature


class TestDetectorConfig:
    def test_defaults_valid(self):
        config = DetectorConfig()
        assert config.tau == 5
        assert config.window_span == 10

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(tau=1)

    def test_invalid_tau_test(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(tau_test=0)

    def test_invalid_score(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(score="mmd")

    def test_invalid_signature_method(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(signature_method="dbscan")

    def test_invalid_weighting(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(weighting="exponential")

    def test_invalid_bootstrap_count(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(n_bootstrap=1)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(alpha=1.0)


class TestDetectionResultContainer:
    def _points(self):
        return [
            ScorePoint(
                time=t,
                score=float(t),
                interval=ConfidenceInterval(float(t) - 0.5, float(t) + 0.5, 0.95, float(t)),
                gamma=float(t) - 5.0,
                alert=t == 8,
            )
            for t in range(5, 10)
        ]

    def test_array_views(self):
        result = DetectionResult(points=self._points())
        assert result.times.tolist() == [5, 6, 7, 8, 9]
        assert result.scores.tolist() == [5.0, 6.0, 7.0, 8.0, 9.0]
        assert result.alerts.sum() == 1
        assert result.alarm_times.tolist() == [8]

    def test_to_dict_round_trip(self):
        result = DetectionResult(points=self._points())
        data = result.to_dict()
        assert data["time"] == [5, 6, 7, 8, 9]
        assert data["alert"][3] is True

    def test_summary_mentions_alerts(self):
        result = DetectionResult(points=self._points())
        assert "1 alert" in result.summary()

    def test_empty_summary(self):
        assert "empty" in DetectionResult().summary()

    def test_len_and_iter(self):
        result = DetectionResult(points=self._points())
        assert len(result) == 5
        assert sum(1 for _ in result) == 5


class TestBagChangePointDetector:
    def test_detects_clear_mean_shift(self, step_change_bags, fast_config):
        detector = BagChangePointDetector(fast_config)
        result = detector.detect(step_change_bags)
        assert result.alerts.any()
        # The change happens at bag index 8; the alert should land near it.
        assert any(7 <= t <= 10 for t in result.alarm_times)

    def test_no_alert_on_stationary_stream(self, stationary_bags, fast_config):
        detector = BagChangePointDetector(fast_config)
        result = detector.detect(stationary_bags)
        assert int(result.alerts.sum()) <= 1  # occasional false alarm tolerated

    def test_score_peaks_near_change(self, step_change_bags, fast_config):
        result = BagChangePointDetector(fast_config).detect(step_change_bags)
        peak_time = result.times[int(np.argmax(result.scores))]
        assert 6 <= peak_time <= 10

    def test_inspection_points_range(self, step_change_bags, fast_config):
        result = BagChangePointDetector(fast_config).detect(step_change_bags)
        assert result.times[0] == fast_config.tau
        assert result.times[-1] == len(step_change_bags) - fast_config.tau_test

    def test_confidence_bounds_bracket_point_score(self, step_change_bags, fast_config):
        result = BagChangePointDetector(fast_config).detect(step_change_bags)
        # The point estimate uses the nominal uniform weights, which is the
        # Dirichlet mean, so it should lie inside (or very near) the CI.
        inside = np.mean(
            (result.scores >= result.lower - 1e-6) & (result.scores <= result.upper + 1e-6)
        )
        assert inside > 0.8

    def test_accepts_bag_sequence(self, step_change_bags, fast_config):
        sequence = BagSequence(step_change_bags)
        result = BagChangePointDetector(fast_config).detect(sequence)
        assert len(result) > 0

    def test_accepts_prebuilt_signatures(self, rng, fast_config):
        signatures = [
            Signature(rng.normal(0, 1, size=(20, 2)), np.ones(20), label=i) for i in range(8)
        ]
        signatures += [
            Signature(rng.normal(5, 1, size=(20, 2)), np.ones(20), label=8 + i)
            for i in range(8)
        ]
        result = BagChangePointDetector(fast_config).detect(signatures)
        assert result.alerts.any()

    def test_kwargs_constructor(self, step_change_bags):
        detector = BagChangePointDetector(
            tau=4, tau_test=4, n_bootstrap=50, signature_method="exact", random_state=0
        )
        assert detector.config.tau == 4
        assert len(detector.detect(step_change_bags)) > 0

    def test_config_and_kwargs_mutually_exclusive(self, fast_config):
        with pytest.raises(ValidationError):
            BagChangePointDetector(fast_config, tau=3)

    def test_too_few_bags_rejected(self, rng, fast_config):
        bags = [rng.normal(size=(10, 2)) for _ in range(5)]
        with pytest.raises(ValidationError):
            BagChangePointDetector(fast_config).detect(bags)

    def test_distance_matrix_attached_on_request(self, step_change_bags, fast_config):
        result = BagChangePointDetector(fast_config).detect(
            step_change_bags, return_distance_matrix=True
        )
        n = len(step_change_bags)
        assert result.emd_matrix.shape == (n, n)
        assert np.allclose(result.emd_matrix, result.emd_matrix.T)

    def test_reproducible_with_seed(self, step_change_bags):
        config = dict(tau=4, tau_test=4, n_bootstrap=50, signature_method="exact")
        r1 = BagChangePointDetector(random_state=11, **config).detect(step_change_bags)
        r2 = BagChangePointDetector(random_state=11, **config).detect(step_change_bags)
        assert np.allclose(r1.scores, r2.scores)
        assert np.allclose(r1.lower, r2.lower)

    def test_lr_score_variant_runs(self, step_change_bags):
        detector = BagChangePointDetector(
            tau=4, tau_test=4, score="lr", n_bootstrap=50,
            signature_method="exact", random_state=0,
        )
        result = detector.detect(step_change_bags)
        peak_time = result.times[int(np.argmax(result.scores))]
        assert 6 <= peak_time <= 10

    def test_discounted_weighting_runs(self, step_change_bags):
        detector = BagChangePointDetector(
            tau=4, tau_test=4, weighting="discounted", n_bootstrap=50,
            signature_method="exact", random_state=0,
        )
        assert len(detector.detect(step_change_bags)) > 0

    def test_kmeans_signatures_detect_variance_change(self, rng):
        # A change in spread (not mean) is invisible to mean-based summaries
        # but visible to the bag-of-data detector.
        bags = [rng.normal(0, 1, size=(80, 2)) for _ in range(8)]
        bags += [rng.normal(0, 4, size=(80, 2)) for _ in range(8)]
        detector = BagChangePointDetector(
            tau=4, tau_test=4, signature_method="kmeans", n_clusters=6,
            n_bootstrap=60, random_state=0,
        )
        result = detector.detect(bags)
        peak_time = result.times[int(np.argmax(result.scores))]
        assert 6 <= peak_time <= 10

    def test_metadata_recorded(self, step_change_bags, fast_config):
        result = BagChangePointDetector(fast_config).detect(step_change_bags)
        assert result.metadata["tau"] == fast_config.tau
        assert result.metadata["n_bags"] == len(step_change_bags)
