"""Tests for the banded EMD engine and offline/online detector parity.

The parity tests follow the skchange change-detector test idiom: one
parametrized test per invariant, run across the detector family
(score x weighting variants), asserting that the banded/incremental
machinery is observationally identical to the reference computation.
"""

import numpy as np
import pytest

from repro.core import (
    BagChangePointDetector,
    DetectorConfig,
    OnlineBagDetector,
    WindowDistances,
    compute_score,
    score_likelihood_ratio,
)
from repro.emd import (
    BandedDistanceMatrix,
    PairwiseEMDEngine,
    banded_emd_matrix,
    emd,
    emd_matrix,
)
from repro.emd.one_dimensional import wasserstein_1d
from repro.exceptions import ConfigurationError, ValidationError
from repro.signatures import Signature

detector_variants = [
    {"score": "kl", "weighting": "uniform"},
    {"score": "kl", "weighting": "discounted"},
    {"score": "lr", "weighting": "uniform"},
    {"score": "lr", "weighting": "discounted"},
]


def make_signatures(rng, n=12, size=8, dim=2, offset_after=None):
    sigs = []
    for i in range(n):
        offset = 3.0 if offset_after is not None and i >= offset_after else 0.0
        sigs.append(
            Signature(rng.normal(offset, 1.0, size=(size, dim)), np.ones(size), label=i)
        )
    return sigs


class TestBandedDistanceMatrix:
    def test_set_get_roundtrip_symmetric(self):
        banded = BandedDistanceMatrix(6, 3)
        banded[1, 2] = 4.5
        assert banded[1, 2] == 4.5
        assert banded[2, 1] == 4.5

    def test_diagonal_is_zero(self):
        banded = BandedDistanceMatrix(4, 2)
        assert banded[2, 2] == 0.0

    def test_diagonal_write_rejected(self):
        banded = BandedDistanceMatrix(4, 2)
        with pytest.raises(ValidationError):
            banded[1, 1] = 1.0

    def test_out_of_band_access_rejected(self):
        banded = BandedDistanceMatrix(6, 3)
        with pytest.raises(ValidationError):
            banded[0, 3]
        with pytest.raises(ValidationError):
            banded[0, 3] = 1.0

    def test_out_of_range_rejected(self):
        banded = BandedDistanceMatrix(4, 2)
        with pytest.raises(ValidationError):
            banded[0, 4]

    def test_block_outside_band_rejected(self):
        banded = BandedDistanceMatrix(10, 3)
        with pytest.raises(ValidationError):
            banded.block([0, 1], [4, 5])

    def test_storage_is_linear_in_n(self):
        banded = BandedDistanceMatrix(1000, 11)
        assert banded.band.shape == (1000, 10)
        dense_bytes = 1000 * 1000 * 8
        assert banded.nbytes < dense_bytes / 10

    def test_from_dense_to_dense_roundtrip(self, rng):
        sym = rng.uniform(1, 2, size=(7, 7))
        sym = (sym + sym.T) / 2.0
        np.fill_diagonal(sym, 0.0)
        banded = BandedDistanceMatrix.from_dense(sym, 3)
        dense = banded.to_dense()
        for i in range(7):
            for j in range(7):
                expected = sym[i, j] if abs(i - j) < 3 else 0.0
                assert dense[i, j] == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("n,bandwidth", [(1, 2), (5, 2), (8, 3), (6, 10), (10, 10)])
    def test_pair_indices_match_reference_loop(self, n, bandwidth):
        banded = BandedDistanceMatrix(n, bandwidth)
        i, j = banded.pair_indices()
        expected = [
            (a, b)
            for a in range(n)
            for b in range(a + 1, min(n, a + bandwidth))
        ]
        assert list(zip(i.tolist(), j.tolist())) == expected

    def test_pairs_is_thin_wrapper_over_pair_indices(self):
        banded = BandedDistanceMatrix(7, 3)
        i, j = banded.pair_indices()
        assert list(banded.pairs()) == list(zip(i.tolist(), j.tolist()))

    def test_pair_indices_are_all_in_band(self):
        banded = BandedDistanceMatrix(9, 4)
        i, j = banded.pair_indices()
        assert np.all(j > i)
        assert np.all(j - i < banded.bandwidth)
        # Count matches the closed form summed per row.
        assert i.size == sum(min(9, a + 4) - (a + 1) for a in range(9))

    def test_window_matches_dense_blocks(self, rng):
        sigs = make_signatures(rng, n=10)
        dense = emd_matrix(sigs)
        banded = BandedDistanceMatrix.from_dense(dense, 6)
        ref, test, cross = banded.window(2, 3, 3)
        ref_idx, test_idx = np.arange(2, 5), np.arange(5, 8)
        assert np.allclose(ref, dense[np.ix_(ref_idx, ref_idx)], atol=1e-12)
        assert np.allclose(test, dense[np.ix_(test_idx, test_idx)], atol=1e-12)
        assert np.allclose(cross, dense[np.ix_(ref_idx, test_idx)], atol=1e-12)


class TestPairwiseEMDEngine:
    def test_matches_scalar_emd_general_path(self, rng):
        sigs = make_signatures(rng, n=6)
        engine = PairwiseEMDEngine()
        pairs = [(sigs[i], sigs[j]) for i in range(6) for j in range(i + 1, 6)]
        values = engine.compute_pairs(pairs)
        expected = [emd(a, b) for a, b in pairs]
        assert np.allclose(values, expected, atol=1e-10)
        assert engine.n_evaluations == len(pairs)
        assert engine.n_fast_path == 0  # 2-D signatures take the LP path

    def test_vectorised_1d_fast_path_matches_oracle(self, rng):
        sigs = [
            Signature(rng.normal(size=(k, 1)), rng.uniform(0.5, 2.0, k)).normalized()
            for k in (5, 8, 6, 7, 9)
        ]
        engine = PairwiseEMDEngine()
        pairs = [(sigs[i], sigs[j]) for i in range(5) for j in range(i + 1, 5)]
        values = engine.compute_pairs(pairs)
        expected = [
            wasserstein_1d(a.positions[:, 0], a.weights, b.positions[:, 0], b.weights)
            for a, b in pairs
        ]
        assert np.allclose(values, expected, atol=1e-10)
        assert engine.n_fast_path == len(pairs)

    def test_fast_path_disabled_for_explicit_backend(self, rng):
        sigs = [
            Signature(rng.normal(size=(5, 1)), np.ones(5)) for _ in range(3)
        ]
        engine = PairwiseEMDEngine(backend="linprog")
        engine.compute_pairs([(sigs[0], sigs[1]), (sigs[1], sigs[2])])
        assert engine.n_fast_path == 0

    @pytest.mark.parametrize("parallel_backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, rng, parallel_backend):
        sigs = make_signatures(rng, n=8)
        serial = PairwiseEMDEngine().banded_matrix(sigs, 4)
        parallel = PairwiseEMDEngine(
            parallel_backend=parallel_backend, n_workers=2
        ).banded_matrix(sigs, 4)
        assert np.allclose(serial.to_dense(), parallel.to_dense(), atol=1e-10)

    def test_invalid_parallel_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            PairwiseEMDEngine(parallel_backend="gpu")

    def test_empty_pair_batch(self):
        assert PairwiseEMDEngine().compute_pairs([]).size == 0


class TestEngineLifecycle:
    def test_pool_persists_across_batches(self, rng):
        sigs = make_signatures(rng, n=6)
        pairs = [(sigs[i], sigs[i + 1]) for i in range(5)]
        engine = PairwiseEMDEngine(parallel_backend="thread", n_workers=2)
        engine.compute_pairs(pairs)
        first_pool = engine._pool
        assert first_pool is not None
        engine.compute_pairs(pairs)
        assert engine._pool is first_pool
        engine.close()

    def test_close_shuts_down_pool_and_blocks_reuse(self, rng):
        sigs = make_signatures(rng, n=4)
        engine = PairwiseEMDEngine(parallel_backend="thread", n_workers=2)
        engine.compute_pairs([(sigs[0], sigs[1]), (sigs[1], sigs[2])])
        engine.close()
        assert engine.closed
        with pytest.raises(ConfigurationError):
            engine.compute_pairs([(sigs[0], sigs[1])])
        with pytest.raises(ConfigurationError):
            engine.compute(sigs[0], sigs[1])
        engine.close()  # idempotent

    def test_serial_engine_close_blocks_reuse(self, rng):
        sigs = make_signatures(rng, n=3)
        engine = PairwiseEMDEngine()
        engine.close()
        with pytest.raises(ConfigurationError):
            engine.compute_pairs([(sigs[0], sigs[1])])

    def test_context_manager_closes_on_exit(self, rng):
        sigs = make_signatures(rng, n=4)
        with PairwiseEMDEngine(parallel_backend="thread", n_workers=2) as engine:
            values = engine.compute_pairs([(sigs[0], sigs[1]), (sigs[2], sigs[3])])
            assert values.shape == (2,)
        assert engine.closed
        with pytest.raises(ConfigurationError):
            engine.compute_pairs([(sigs[0], sigs[1])])

    def test_entering_closed_engine_rejected(self):
        engine = PairwiseEMDEngine()
        engine.close()
        with pytest.raises(ConfigurationError):
            engine.__enter__()

    def test_computation_errors_propagate_and_leave_pool_alive(self, rng, monkeypatch):
        from repro.emd import batch as batch_mod
        from repro.exceptions import SolverError

        sigs = make_signatures(rng, n=4)
        pairs = [(sigs[0], sigs[1]), (sigs[1], sigs[2])]
        engine = PairwiseEMDEngine(parallel_backend="thread", n_workers=2)
        engine.compute_pairs(pairs)
        pool = engine._pool

        def failing_pair(args):
            raise SolverError("LP failed")

        monkeypatch.setattr(batch_mod, "_emd_pair", failing_pair)
        with pytest.raises(SolverError):
            engine.compute_pairs(pairs)
        # A solver failure is not a pool failure: parallelism stays on.
        assert engine._pool is pool
        assert not engine._pool_failed

        def type_error_pair(args):
            raise TypeError("bad callable ground distance")

        monkeypatch.setattr(batch_mod, "_emd_pair", type_error_pair)
        # Thread pools never pickle, so a TypeError is a computation error
        # there too and must not retire the pool.
        with pytest.raises(TypeError):
            engine.compute_pairs(pairs)
        assert engine._pool is pool
        assert not engine._pool_failed
        monkeypatch.undo()
        assert engine.compute_pairs(pairs).shape == (2,)
        engine.close()

    def test_thread_spawn_failure_falls_back_to_serial(self, rng, monkeypatch):
        sigs = make_signatures(rng, n=4)
        pairs = [(sigs[0], sigs[1]), (sigs[1], sigs[2])]
        engine = PairwiseEMDEngine(parallel_backend="thread", n_workers=2)
        engine.compute_pairs(pairs)  # create the pool
        # Executors spawn workers lazily at submit; emulate a thread-capped
        # environment where map itself fails.
        def failing_map(*args, **kwargs):
            raise RuntimeError("can't start new thread")

        monkeypatch.setattr(engine._pool, "map", failing_map)
        values = engine.compute_pairs(pairs)
        assert values.shape == (2,)
        assert engine._pool_failed and engine._pool is None
        # Later batches keep working serially.
        assert engine.compute_pairs(pairs).shape == (2,)
        engine.close()

    def test_detectors_close_their_engine(self, rng):
        bags = [rng.normal(0, 1, size=(10, 2)) for _ in range(8)]
        kwargs = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        with BagChangePointDetector(**kwargs) as detector:
            detector.detect(bags)
        with pytest.raises(ConfigurationError):
            detector.detect(bags)
        detector.close()  # idempotent

        online = OnlineBagDetector(**kwargs)
        online.push(bags[0])
        online.close()
        with pytest.raises(ConfigurationError):
            online.push(bags[1])

    def test_failed_online_push_is_retryable(self, rng, monkeypatch):
        from repro.exceptions import SolverError

        bags = [rng.normal(0, 1, size=(12, 2)) for _ in range(10)]
        kwargs = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        clean = OnlineBagDetector(**kwargs)
        for bag in bags:
            clean.push(bag)

        detector = OnlineBagDetector(**kwargs)
        for bag in bags[:5]:
            detector.push(bag)
        seen_before = detector.n_seen
        matrix_before = detector._window_matrix.copy()

        def failing_pairs(pairs):
            raise SolverError("LP failed")

        monkeypatch.setattr(detector._engine, "compute_pairs", failing_pairs)
        with pytest.raises(SolverError):
            detector.push(bags[5])
        monkeypatch.undo()
        # The failed push mutated nothing: the detector is retryable and
        # the resumed stream matches an uninterrupted run bit-for-bit.
        assert detector.n_seen == seen_before
        np.testing.assert_array_equal(detector._window_matrix, matrix_before)
        for bag in bags[5:]:
            detector.push(bag)
        assert len(detector.history.points) == len(clean.history.points)
        for a, b in zip(detector.history.points, clean.history.points):
            assert a.time == b.time
            assert a.score == b.score
            assert a.interval.lower == b.interval.lower


class TestGroundDistanceCache:
    def make_common_support_signatures(self, rng, n=6, k=5, dim=2):
        support = rng.normal(size=(k, dim))
        return [
            Signature(support, rng.uniform(0.5, 2.0, size=k), label=i) for i in range(n)
        ]

    def test_common_support_pairs_hit_cache(self, rng):
        sigs = self.make_common_support_signatures(rng)
        pairs = [(sigs[i], sigs[j]) for i in range(6) for j in range(i + 1, 6)]
        engine = PairwiseEMDEngine()
        values = engine.compute_pairs(pairs)
        # One build for the shared support, every other pair reuses it.
        assert engine.n_cost_cache_hits == len(pairs) - 1
        expected = [emd(a, b) for a, b in pairs]
        assert np.allclose(values, expected, atol=1e-12)

    def test_distinct_supports_do_not_hit_cache(self, rng):
        sigs = make_signatures(rng, n=5)  # independent supports per bag
        engine = PairwiseEMDEngine()
        engine.compute_pairs([(sigs[i], sigs[i + 1]) for i in range(4)])
        assert engine.n_cost_cache_hits == 0

    def test_cache_engages_for_in_process_process_backend(self, rng):
        # parallel_backend="process" with one worker never spawns a pool,
        # so execution is in-process and the cache should still be shared.
        sigs = self.make_common_support_signatures(rng, n=4)
        engine = PairwiseEMDEngine(parallel_backend="process", n_workers=1)
        pairs = [(sigs[i], sigs[j]) for i in range(4) for j in range(i + 1, 4)]
        values = engine.compute_pairs(pairs)
        assert engine.n_cost_cache_hits == len(pairs) - 1
        assert np.allclose(values, [emd(a, b) for a, b in pairs], atol=1e-12)
        engine.close()

    def test_process_pool_worker_cache_matches_serial(self, rng):
        # Process jobs ship no cost matrix; each worker builds the shared
        # common-support matrix once (module-level per-worker cache) and
        # must produce the same distances as the serial cached path.
        sigs = self.make_common_support_signatures(rng, n=6)
        pairs = [(sigs[i], sigs[j]) for i in range(6) for j in range(i + 1, 6)]
        serial = PairwiseEMDEngine().compute_pairs(pairs)
        with PairwiseEMDEngine(parallel_backend="process", n_workers=2) as engine:
            parallel = engine.compute_pairs(pairs)
        assert np.allclose(serial, parallel, atol=1e-10)

    def test_worker_cache_builds_cost_once_in_process(self, rng):
        # Exercise the worker-side branch of _emd_pair directly (it runs
        # in this process, so the module-level cache is observable).
        from repro.emd import batch as batch_mod

        sigs = self.make_common_support_signatures(rng, n=3)
        batch_mod._worker_cost_cache.clear()
        jobs = [
            (a, b, "euclidean", "auto", None, True)
            for a, b in [(sigs[0], sigs[1]), (sigs[1], sigs[2])]
        ]
        values = [batch_mod._emd_pair(job) for job in jobs]
        assert len(batch_mod._worker_cost_cache) == 1
        expected = [emd(sigs[0], sigs[1]), emd(sigs[1], sigs[2])]
        assert np.allclose(values, expected, atol=1e-12)
        batch_mod._worker_cost_cache.clear()

    def test_cache_persists_across_batches(self, rng):
        sigs = self.make_common_support_signatures(rng, n=4)
        engine = PairwiseEMDEngine()
        engine.compute_pairs([(sigs[0], sigs[1])])
        assert engine.n_cost_cache_hits == 0
        engine.compute_pairs([(sigs[2], sigs[3])])
        assert engine.n_cost_cache_hits == 1

    def test_cache_with_simplex_backend_matches(self, rng):
        sigs = self.make_common_support_signatures(rng, n=3)
        engine = PairwiseEMDEngine(backend="simplex")
        values = engine.compute_pairs([(sigs[0], sigs[1]), (sigs[1], sigs[2])])
        expected = [emd(a, b, backend="simplex") for a, b in
                    [(sigs[0], sigs[1]), (sigs[1], sigs[2])]]
        assert np.allclose(values, expected, atol=1e-12)
        assert engine.n_cost_cache_hits == 1

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            PairwiseEMDEngine(backend="Simplex")  # typo: case-sensitive
        with pytest.raises(ConfigurationError):
            PairwiseEMDEngine(backend="sinkhorn")  # typo for sinkhorn_batch

    def test_histogram_detector_uses_cache(self, rng):
        # Histogram signatures over a fixed range share one bin-centre grid
        # whenever all bins are occupied, which is the workload the cache
        # is for; verify end-to-end through the banded matrix build.
        sigs = self.make_common_support_signatures(rng, n=8, k=4, dim=1)
        engine = PairwiseEMDEngine(backend="linprog")  # force the LP path in 1-D
        engine.banded_matrix(sigs, 4)
        assert engine.n_cost_cache_hits > 0


class TestFromDenseVectorised:
    def test_matches_per_pair_extraction(self, rng):
        sym = rng.uniform(1, 2, size=(9, 9))
        sym = (sym + sym.T) / 2.0
        np.fill_diagonal(sym, 0.0)
        for bandwidth in (2, 4, 9, 15):  # including bandwidth > n
            banded = BandedDistanceMatrix.from_dense(sym, bandwidth)
            reference = BandedDistanceMatrix(9, bandwidth)
            for i, j in reference.pairs():
                reference[i, j] = sym[i, j]
            np.testing.assert_array_equal(
                banded.band, reference.band
            )

    def test_roundtrip_with_bandwidth_wider_than_matrix(self, rng):
        sym = rng.uniform(1, 2, size=(5, 5))
        sym = (sym + sym.T) / 2.0
        np.fill_diagonal(sym, 0.0)
        dense = BandedDistanceMatrix.from_dense(sym, 12).to_dense()
        np.testing.assert_allclose(dense, sym, atol=1e-12)


class TestBandedVsDense:
    @pytest.mark.parametrize("bandwidth", [3, 5, 11])
    def test_band_agrees_with_dense_matrix(self, rng, bandwidth):
        sigs = make_signatures(rng, n=11, offset_after=6)
        dense = emd_matrix(sigs)
        banded = banded_emd_matrix(sigs, bandwidth)
        exported = banded.to_dense()
        n = len(sigs)
        for i in range(n):
            for j in range(n):
                if abs(i - j) < bandwidth:
                    assert exported[i, j] == pytest.approx(dense[i, j], abs=1e-10)
                else:
                    assert exported[i, j] == 0.0

    def test_band_computes_only_band_pairs(self, rng):
        sigs = make_signatures(rng, n=20)
        engine = PairwiseEMDEngine()
        engine.banded_matrix(sigs, 5)
        expected = sum(min(20, i + 5) - (i + 1) for i in range(20))
        assert engine.n_evaluations == expected

    def test_detect_returns_symmetric_dense_export(self, rng):
        bags = [rng.normal(size=(20, 2)) for _ in range(10)]
        config = DetectorConfig(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        result = BagChangePointDetector(config).detect(bags, return_distance_matrix=True)
        assert result.emd_matrix.shape == (10, 10)
        assert np.allclose(result.emd_matrix, result.emd_matrix.T)


class TestOfflineOnlineParity:
    @pytest.mark.parametrize("variant", detector_variants)
    def test_identical_score_point_sequences(self, rng, variant):
        """Same bags => identical ScorePoint sequences, field by field."""
        bags = [rng.normal(0, 1, size=(15, 2)) for _ in range(7)]
        bags += [rng.normal(3, 1, size=(15, 2)) for _ in range(7)]
        cfg = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=30,
            random_state=7, **variant,
        )
        offline = BagChangePointDetector(DetectorConfig(**cfg)).detect(bags)
        online_points = OnlineBagDetector(DetectorConfig(**cfg)).push_many(bags)
        assert len(online_points) == len(offline.points)
        for off, on in zip(offline.points, online_points):
            assert off.time == on.time
            assert off.score == pytest.approx(on.score, abs=1e-10)
            assert off.interval.lower == pytest.approx(on.interval.lower, abs=1e-10)
            assert off.interval.upper == pytest.approx(on.interval.upper, abs=1e-10)
            if np.isnan(off.gamma):
                assert np.isnan(on.gamma)
            else:
                assert off.gamma == pytest.approx(on.gamma, abs=1e-10)
            assert off.alert == on.alert

    def test_parity_with_1d_fast_path(self, rng):
        bags = [rng.normal(0, 1, size=(12, 1)) for _ in range(6)]
        bags += [rng.normal(4, 1, size=(12, 1)) for _ in range(6)]
        cfg = dict(
            tau=3, tau_test=3, signature_method="histogram", bins=16,
            histogram_range=(-6.0, 10.0), n_bootstrap=20, random_state=1,
        )
        offline = BagChangePointDetector(DetectorConfig(**cfg)).detect(bags)
        online_points = OnlineBagDetector(DetectorConfig(**cfg)).push_many(bags)
        for off, on in zip(offline.points, online_points):
            assert off.score == pytest.approx(on.score, abs=1e-10)

    def test_online_push_cost_is_exactly_span_minus_one(self, rng):
        """After warm-up each push performs exactly tau + tau' - 1 EMDs."""
        config = DetectorConfig(
            tau=3, tau_test=4, signature_method="exact", n_bootstrap=20, random_state=0
        )
        detector = OnlineBagDetector(config)
        span = config.window_span
        previous = 0
        for k in range(3 * span):
            detector.push(rng.normal(size=(10, 2)))
            delta = detector.n_distance_evaluations - previous
            previous = detector.n_distance_evaluations
            assert delta == min(k, span - 1)


class TestInspectionIndexPlumbing:
    def _window(self, rng):
        ref = [Signature(rng.normal(0, 1, size=(8, 2)), np.ones(8)) for _ in range(3)]
        test = [Signature(rng.normal(2, 1, size=(8, 2)), np.ones(8)) for _ in range(3)]
        from repro.emd import cross_emd_matrix

        return WindowDistances(
            ref_pairwise=emd_matrix(ref),
            test_pairwise=emd_matrix(test),
            cross=cross_emd_matrix(ref, test),
        )

    def test_compute_score_forwards_inspection_index(self, rng):
        window = self._window(rng)
        weights = np.full(3, 1.0 / 3.0)
        for k in range(3):
            via_dispatch = compute_score(
                "lr", window, weights, weights, inspection_index=k
            )
            direct = score_likelihood_ratio(
                window, weights, weights, inspection_index=k
            )
            assert via_dispatch == pytest.approx(direct, abs=1e-12)

    def test_detector_uses_configured_index(self, rng):
        bags = [rng.normal(0, 1, size=(15, 2)) for _ in range(6)]
        bags += [rng.normal(3, 1, size=(15, 2)) for _ in range(6)]
        base = dict(
            tau=3, tau_test=3, score="lr", signature_method="exact",
            n_bootstrap=20, random_state=0,
        )
        default = BagChangePointDetector(DetectorConfig(**base)).detect(bags)
        shifted = BagChangePointDetector(
            DetectorConfig(lr_inspection_index=2, **base)
        ).detect(bags)
        assert not np.allclose(default.scores, shifted.scores)

    def test_invalid_index_rejected(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(tau_test=3, lr_inspection_index=3)
        with pytest.raises(ConfigurationError):
            DetectorConfig(lr_inspection_index=-1)


class TestEngineConfigValidation:
    def test_invalid_parallel_backend_in_config(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(parallel_backend="gpu")

    def test_invalid_worker_count_in_config(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(n_workers=0)

    def test_threaded_detector_matches_serial(self, rng):
        bags = [rng.normal(0, 1, size=(12, 2)) for _ in range(10)]
        base = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=4
        )
        serial = BagChangePointDetector(DetectorConfig(**base)).detect(bags)
        threaded = BagChangePointDetector(
            DetectorConfig(parallel_backend="thread", n_workers=2, **base)
        ).detect(bags)
        assert np.allclose(serial.scores, threaded.scores, atol=1e-10)
