"""Tests for the banded EMD engine and offline/online detector parity.

The parity tests follow the skchange change-detector test idiom: one
parametrized test per invariant, run across the detector family
(score x weighting variants), asserting that the banded/incremental
machinery is observationally identical to the reference computation.
"""

import numpy as np
import pytest

from repro.core import (
    BagChangePointDetector,
    DetectorConfig,
    OnlineBagDetector,
    WindowDistances,
    compute_score,
    score_likelihood_ratio,
)
from repro.emd import (
    BandedDistanceMatrix,
    PairwiseEMDEngine,
    banded_emd_matrix,
    emd,
    emd_matrix,
)
from repro.emd.one_dimensional import wasserstein_1d
from repro.exceptions import ConfigurationError, ValidationError
from repro.signatures import Signature

detector_variants = [
    {"score": "kl", "weighting": "uniform"},
    {"score": "kl", "weighting": "discounted"},
    {"score": "lr", "weighting": "uniform"},
    {"score": "lr", "weighting": "discounted"},
]


def make_signatures(rng, n=12, size=8, dim=2, offset_after=None):
    sigs = []
    for i in range(n):
        offset = 3.0 if offset_after is not None and i >= offset_after else 0.0
        sigs.append(
            Signature(rng.normal(offset, 1.0, size=(size, dim)), np.ones(size), label=i)
        )
    return sigs


class TestBandedDistanceMatrix:
    def test_set_get_roundtrip_symmetric(self):
        banded = BandedDistanceMatrix(6, 3)
        banded[1, 2] = 4.5
        assert banded[1, 2] == 4.5
        assert banded[2, 1] == 4.5

    def test_diagonal_is_zero(self):
        banded = BandedDistanceMatrix(4, 2)
        assert banded[2, 2] == 0.0

    def test_diagonal_write_rejected(self):
        banded = BandedDistanceMatrix(4, 2)
        with pytest.raises(ValidationError):
            banded[1, 1] = 1.0

    def test_out_of_band_access_rejected(self):
        banded = BandedDistanceMatrix(6, 3)
        with pytest.raises(ValidationError):
            banded[0, 3]
        with pytest.raises(ValidationError):
            banded[0, 3] = 1.0

    def test_out_of_range_rejected(self):
        banded = BandedDistanceMatrix(4, 2)
        with pytest.raises(ValidationError):
            banded[0, 4]

    def test_block_outside_band_rejected(self):
        banded = BandedDistanceMatrix(10, 3)
        with pytest.raises(ValidationError):
            banded.block([0, 1], [4, 5])

    def test_storage_is_linear_in_n(self):
        banded = BandedDistanceMatrix(1000, 11)
        assert banded.band.shape == (1000, 10)
        dense_bytes = 1000 * 1000 * 8
        assert banded.nbytes < dense_bytes / 10

    def test_from_dense_to_dense_roundtrip(self, rng):
        sym = rng.uniform(1, 2, size=(7, 7))
        sym = (sym + sym.T) / 2.0
        np.fill_diagonal(sym, 0.0)
        banded = BandedDistanceMatrix.from_dense(sym, 3)
        dense = banded.to_dense()
        for i in range(7):
            for j in range(7):
                expected = sym[i, j] if abs(i - j) < 3 else 0.0
                assert dense[i, j] == pytest.approx(expected, abs=1e-12)

    def test_window_matches_dense_blocks(self, rng):
        sigs = make_signatures(rng, n=10)
        dense = emd_matrix(sigs)
        banded = BandedDistanceMatrix.from_dense(dense, 6)
        ref, test, cross = banded.window(2, 3, 3)
        ref_idx, test_idx = np.arange(2, 5), np.arange(5, 8)
        assert np.allclose(ref, dense[np.ix_(ref_idx, ref_idx)], atol=1e-12)
        assert np.allclose(test, dense[np.ix_(test_idx, test_idx)], atol=1e-12)
        assert np.allclose(cross, dense[np.ix_(ref_idx, test_idx)], atol=1e-12)


class TestPairwiseEMDEngine:
    def test_matches_scalar_emd_general_path(self, rng):
        sigs = make_signatures(rng, n=6)
        engine = PairwiseEMDEngine()
        pairs = [(sigs[i], sigs[j]) for i in range(6) for j in range(i + 1, 6)]
        values = engine.compute_pairs(pairs)
        expected = [emd(a, b) for a, b in pairs]
        assert np.allclose(values, expected, atol=1e-10)
        assert engine.n_evaluations == len(pairs)
        assert engine.n_fast_path == 0  # 2-D signatures take the LP path

    def test_vectorised_1d_fast_path_matches_oracle(self, rng):
        sigs = [
            Signature(rng.normal(size=(k, 1)), rng.uniform(0.5, 2.0, k)).normalized()
            for k in (5, 8, 6, 7, 9)
        ]
        engine = PairwiseEMDEngine()
        pairs = [(sigs[i], sigs[j]) for i in range(5) for j in range(i + 1, 5)]
        values = engine.compute_pairs(pairs)
        expected = [
            wasserstein_1d(a.positions[:, 0], a.weights, b.positions[:, 0], b.weights)
            for a, b in pairs
        ]
        assert np.allclose(values, expected, atol=1e-10)
        assert engine.n_fast_path == len(pairs)

    def test_fast_path_disabled_for_explicit_backend(self, rng):
        sigs = [
            Signature(rng.normal(size=(5, 1)), np.ones(5)) for _ in range(3)
        ]
        engine = PairwiseEMDEngine(backend="linprog")
        engine.compute_pairs([(sigs[0], sigs[1]), (sigs[1], sigs[2])])
        assert engine.n_fast_path == 0

    @pytest.mark.parametrize("parallel_backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, rng, parallel_backend):
        sigs = make_signatures(rng, n=8)
        serial = PairwiseEMDEngine().banded_matrix(sigs, 4)
        parallel = PairwiseEMDEngine(
            parallel_backend=parallel_backend, n_workers=2
        ).banded_matrix(sigs, 4)
        assert np.allclose(serial.to_dense(), parallel.to_dense(), atol=1e-10)

    def test_invalid_parallel_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            PairwiseEMDEngine(parallel_backend="gpu")

    def test_empty_pair_batch(self):
        assert PairwiseEMDEngine().compute_pairs([]).size == 0


class TestBandedVsDense:
    @pytest.mark.parametrize("bandwidth", [3, 5, 11])
    def test_band_agrees_with_dense_matrix(self, rng, bandwidth):
        sigs = make_signatures(rng, n=11, offset_after=6)
        dense = emd_matrix(sigs)
        banded = banded_emd_matrix(sigs, bandwidth)
        exported = banded.to_dense()
        n = len(sigs)
        for i in range(n):
            for j in range(n):
                if abs(i - j) < bandwidth:
                    assert exported[i, j] == pytest.approx(dense[i, j], abs=1e-10)
                else:
                    assert exported[i, j] == 0.0

    def test_band_computes_only_band_pairs(self, rng):
        sigs = make_signatures(rng, n=20)
        engine = PairwiseEMDEngine()
        engine.banded_matrix(sigs, 5)
        expected = sum(min(20, i + 5) - (i + 1) for i in range(20))
        assert engine.n_evaluations == expected

    def test_detect_returns_symmetric_dense_export(self, rng):
        bags = [rng.normal(size=(20, 2)) for _ in range(10)]
        config = DetectorConfig(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        result = BagChangePointDetector(config).detect(bags, return_distance_matrix=True)
        assert result.emd_matrix.shape == (10, 10)
        assert np.allclose(result.emd_matrix, result.emd_matrix.T)


class TestOfflineOnlineParity:
    @pytest.mark.parametrize("variant", detector_variants)
    def test_identical_score_point_sequences(self, rng, variant):
        """Same bags => identical ScorePoint sequences, field by field."""
        bags = [rng.normal(0, 1, size=(15, 2)) for _ in range(7)]
        bags += [rng.normal(3, 1, size=(15, 2)) for _ in range(7)]
        cfg = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=30,
            random_state=7, **variant,
        )
        offline = BagChangePointDetector(DetectorConfig(**cfg)).detect(bags)
        online_points = OnlineBagDetector(DetectorConfig(**cfg)).push_many(bags)
        assert len(online_points) == len(offline.points)
        for off, on in zip(offline.points, online_points):
            assert off.time == on.time
            assert off.score == pytest.approx(on.score, abs=1e-10)
            assert off.interval.lower == pytest.approx(on.interval.lower, abs=1e-10)
            assert off.interval.upper == pytest.approx(on.interval.upper, abs=1e-10)
            if np.isnan(off.gamma):
                assert np.isnan(on.gamma)
            else:
                assert off.gamma == pytest.approx(on.gamma, abs=1e-10)
            assert off.alert == on.alert

    def test_parity_with_1d_fast_path(self, rng):
        bags = [rng.normal(0, 1, size=(12, 1)) for _ in range(6)]
        bags += [rng.normal(4, 1, size=(12, 1)) for _ in range(6)]
        cfg = dict(
            tau=3, tau_test=3, signature_method="histogram", bins=16,
            histogram_range=(-6.0, 10.0), n_bootstrap=20, random_state=1,
        )
        offline = BagChangePointDetector(DetectorConfig(**cfg)).detect(bags)
        online_points = OnlineBagDetector(DetectorConfig(**cfg)).push_many(bags)
        for off, on in zip(offline.points, online_points):
            assert off.score == pytest.approx(on.score, abs=1e-10)

    def test_online_push_cost_is_exactly_span_minus_one(self, rng):
        """After warm-up each push performs exactly tau + tau' - 1 EMDs."""
        config = DetectorConfig(
            tau=3, tau_test=4, signature_method="exact", n_bootstrap=20, random_state=0
        )
        detector = OnlineBagDetector(config)
        span = config.window_span
        previous = 0
        for k in range(3 * span):
            detector.push(rng.normal(size=(10, 2)))
            delta = detector.n_distance_evaluations - previous
            previous = detector.n_distance_evaluations
            assert delta == min(k, span - 1)


class TestInspectionIndexPlumbing:
    def _window(self, rng):
        ref = [Signature(rng.normal(0, 1, size=(8, 2)), np.ones(8)) for _ in range(3)]
        test = [Signature(rng.normal(2, 1, size=(8, 2)), np.ones(8)) for _ in range(3)]
        from repro.emd import cross_emd_matrix

        return WindowDistances(
            ref_pairwise=emd_matrix(ref),
            test_pairwise=emd_matrix(test),
            cross=cross_emd_matrix(ref, test),
        )

    def test_compute_score_forwards_inspection_index(self, rng):
        window = self._window(rng)
        weights = np.full(3, 1.0 / 3.0)
        for k in range(3):
            via_dispatch = compute_score(
                "lr", window, weights, weights, inspection_index=k
            )
            direct = score_likelihood_ratio(
                window, weights, weights, inspection_index=k
            )
            assert via_dispatch == pytest.approx(direct, abs=1e-12)

    def test_detector_uses_configured_index(self, rng):
        bags = [rng.normal(0, 1, size=(15, 2)) for _ in range(6)]
        bags += [rng.normal(3, 1, size=(15, 2)) for _ in range(6)]
        base = dict(
            tau=3, tau_test=3, score="lr", signature_method="exact",
            n_bootstrap=20, random_state=0,
        )
        default = BagChangePointDetector(DetectorConfig(**base)).detect(bags)
        shifted = BagChangePointDetector(
            DetectorConfig(lr_inspection_index=2, **base)
        ).detect(bags)
        assert not np.allclose(default.scores, shifted.scores)

    def test_invalid_index_rejected(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(tau_test=3, lr_inspection_index=3)
        with pytest.raises(ConfigurationError):
            DetectorConfig(lr_inspection_index=-1)


class TestEngineConfigValidation:
    def test_invalid_parallel_backend_in_config(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(parallel_backend="gpu")

    def test_invalid_worker_count_in_config(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(n_workers=0)

    def test_threaded_detector_matches_serial(self, rng):
        bags = [rng.normal(0, 1, size=(12, 2)) for _ in range(10)]
        base = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=4
        )
        serial = BagChangePointDetector(DetectorConfig(**base)).detect(bags)
        threaded = BagChangePointDetector(
            DetectorConfig(parallel_backend="thread", n_workers=2, **base)
        ).detect(bags)
        assert np.allclose(serial.scores, threaded.scores, atol=1e-10)
