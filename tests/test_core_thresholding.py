"""Tests for the adaptive thresholding (gamma statistic, Eq. 18-20)."""

import numpy as np
import pytest

from repro.bootstrap import ConfidenceInterval
from repro.core import AdaptiveThreshold, apply_threshold, gamma_statistic, is_significant


def ci(lower, upper):
    return ConfidenceInterval(lower=lower, upper=upper, level=0.95)


class TestGammaStatistic:
    def test_positive_when_intervals_disjoint(self):
        assert gamma_statistic(ci(2.0, 3.0), ci(0.0, 1.0)) == pytest.approx(1.0)

    def test_negative_when_intervals_overlap(self):
        assert gamma_statistic(ci(0.5, 3.0), ci(0.0, 1.0)) == pytest.approx(-0.5)

    def test_nan_when_no_earlier_interval(self):
        assert np.isnan(gamma_statistic(ci(0.0, 1.0), None))

    def test_is_significant_rules(self):
        assert is_significant(0.5)
        assert not is_significant(-0.5)
        assert not is_significant(0.0)
        assert not is_significant(float("nan"))


class TestAdaptiveThreshold:
    def test_no_alert_before_lag_filled(self):
        threshold = AdaptiveThreshold(lag=3)
        gamma, alert = threshold.update(5, ci(10.0, 11.0))
        assert np.isnan(gamma)
        assert not alert

    def test_alert_when_interval_jumps(self):
        threshold = AdaptiveThreshold(lag=2)
        threshold.update(1, ci(0.0, 1.0))
        threshold.update(2, ci(0.0, 1.0))
        gamma, alert = threshold.update(3, ci(5.0, 6.0))
        assert gamma == pytest.approx(4.0)
        assert alert

    def test_no_alert_when_overlapping(self):
        threshold = AdaptiveThreshold(lag=1)
        threshold.update(1, ci(0.0, 2.0))
        gamma, alert = threshold.update(2, ci(1.5, 3.0))
        assert not alert

    def test_comparison_is_exactly_lag_steps_back(self):
        threshold = AdaptiveThreshold(lag=2)
        threshold.update(1, ci(0.0, 1.0))    # will be compared against by t=3
        threshold.update(2, ci(10.0, 11.0))  # must NOT be used at t=3
        gamma, alert = threshold.update(3, ci(5.0, 6.0))
        assert gamma == pytest.approx(5.0 - 1.0)
        assert alert

    def test_interval_at_lookup(self):
        threshold = AdaptiveThreshold(lag=1)
        interval = ci(0.0, 1.0)
        threshold.update(4, interval)
        assert threshold.interval_at(4) is interval
        assert threshold.interval_at(3) is None

    def test_len_counts_registered(self):
        threshold = AdaptiveThreshold(lag=1)
        threshold.update(1, ci(0, 1))
        threshold.update(2, ci(0, 1))
        assert len(threshold) == 2


class TestApplyThreshold:
    def test_paper_figure5_scenario(self):
        # Fig. 5: a high score at t=7 whose interval overlaps the one at
        # t=4 (no alert), and a high score at t=16 whose interval does not
        # overlap the one at t=13 (alert), with lag tau' = 3.
        times = list(range(1, 17))
        intervals = [ci(0.0, 1.0) for _ in times]
        intervals[6] = ci(0.8, 2.5)    # t = 7 overlaps [0, 1] -> no alert
        intervals[15] = ci(1.5, 3.0)   # t = 16 does not overlap -> alert
        gammas, alerts = apply_threshold(times, intervals, lag=3)
        assert not alerts[6]
        assert alerts[15]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_threshold([1, 2], [ci(0, 1)], lag=1)

    def test_all_nan_prefix(self):
        times = [10, 11, 12]
        intervals = [ci(0, 1)] * 3
        gammas, alerts = apply_threshold(times, intervals, lag=5)
        assert np.all(np.isnan(gammas))
        assert not alerts.any()
