"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import project_to_capped_simplex
from repro.bootstrap import percentile_interval, sample_uniform_dirichlet_weights
from repro.emd import (
    emd,
    solve_emd_linprog,
    solve_unbalanced_transportation,
    wasserstein_1d,
)
from repro.embedding import classical_mds
from repro.information import auto_entropy, cross_entropy, information_content, uniform_weights
from repro.signatures import Signature

# ---------------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------------- #

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=0.05, max_value=20.0, allow_nan=False, allow_infinity=False)


@st.composite
def signatures(draw, dimension=None, max_size=6):
    """Random small signatures with finite positions and positive weights."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    dim = dimension if dimension is not None else draw(st.integers(min_value=1, max_value=3))
    positions = draw(
        arrays(float, (size, dim), elements=finite_floats, unique=True)
    )
    weights = draw(arrays(float, (size,), elements=positive_floats))
    return Signature(positions, weights)


@st.composite
def transport_instances(draw):
    """Random small transportation problems (possibly unbalanced)."""
    m = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=5))
    cost = draw(arrays(float, (m, n), elements=st.floats(0.0, 30.0)))
    supply = draw(arrays(float, (m,), elements=positive_floats))
    demand = draw(arrays(float, (n,), elements=positive_floats))
    return cost, supply, demand


# ---------------------------------------------------------------------------- #
# EMD properties
# ---------------------------------------------------------------------------- #


class TestEmdProperties:
    @given(signatures(dimension=2))
    @settings(max_examples=25, deadline=None)
    def test_self_distance_zero(self, signature):
        assert emd(signature, signature) == pytest.approx(0.0, abs=1e-7)

    @given(signatures(dimension=2), signatures(dimension=2))
    @settings(max_examples=25, deadline=None)
    def test_nonnegativity_and_symmetry(self, sig_a, sig_b):
        d_ab = emd(sig_a, sig_b)
        d_ba = emd(sig_b, sig_a)
        assert d_ab >= -1e-9
        assert d_ab == pytest.approx(d_ba, rel=1e-6, abs=1e-7)

    @given(signatures(dimension=1), signatures(dimension=1))
    @settings(max_examples=25, deadline=None)
    def test_1d_closed_form_matches_lp_for_normalised_signatures(self, sig_a, sig_b):
        a, b = sig_a.normalized(), sig_b.normalized()
        closed_form = wasserstein_1d(
            a.positions[:, 0], a.weights, b.positions[:, 0], b.weights
        )
        lp = emd(a, b, backend="linprog")
        assert closed_form == pytest.approx(lp, rel=1e-5, abs=1e-6)

    @given(
        signatures(dimension=2),
        signatures(dimension=2),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_weight_scale_invariance(self, sig_a, sig_b, factor):
        original = emd(sig_a, sig_b)
        scaled = emd(sig_a.scaled(factor), sig_b.scaled(factor))
        assert scaled == pytest.approx(original, rel=1e-5, abs=1e-7)

    @given(transport_instances())
    @settings(max_examples=25, deadline=None)
    def test_simplex_matches_linprog(self, instance):
        cost, supply, demand = instance
        simplex = solve_unbalanced_transportation(cost, supply, demand)
        reference = solve_emd_linprog(cost, supply, demand)
        assert simplex.cost == pytest.approx(reference.cost, rel=1e-4, abs=1e-5)

    @given(transport_instances())
    @settings(max_examples=25, deadline=None)
    def test_lp_flow_feasible(self, instance):
        cost, supply, demand = instance
        plan = solve_emd_linprog(cost, supply, demand)
        assert np.all(plan.flow >= -1e-9)
        assert np.all(plan.flow.sum(axis=1) <= supply + 1e-6)
        assert np.all(plan.flow.sum(axis=0) <= demand + 1e-6)
        assert plan.total_flow == pytest.approx(min(supply.sum(), demand.sum()), rel=1e-6)


# ---------------------------------------------------------------------------- #
# Signature properties
# ---------------------------------------------------------------------------- #


class TestSignatureProperties:
    @given(signatures())
    @settings(max_examples=50, deadline=None)
    def test_normalized_weight_sums_to_one(self, signature):
        assert signature.normalized().total_weight == pytest.approx(1.0)

    @given(signatures(), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_scaling_scales_total_weight(self, signature, factor):
        assert signature.scaled(factor).total_weight == pytest.approx(
            signature.total_weight * factor, rel=1e-9
        )

    @given(signatures())
    @settings(max_examples=50, deadline=None)
    def test_mean_lies_in_bounding_box(self, signature):
        mean = signature.mean()
        low = signature.positions.min(axis=0) - 1e-9
        high = signature.positions.max(axis=0) + 1e-9
        assert np.all(mean >= low) and np.all(mean <= high)

    @given(
        arrays(float, st.tuples(st.integers(2, 30), st.just(2)), elements=finite_floats)
    )
    @settings(max_examples=50, deadline=None)
    def test_from_points_preserves_total_mass(self, points):
        signature = Signature.from_points(points)
        assert signature.total_weight == pytest.approx(float(len(points)))


# ---------------------------------------------------------------------------- #
# Information estimator properties
# ---------------------------------------------------------------------------- #


class TestInformationProperties:
    @given(st.integers(min_value=2, max_value=8), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_auto_entropy_monotone_in_global_scaling(self, n, scale):
        rng = np.random.default_rng(0)
        base = rng.uniform(1.0, 2.0, size=(n, n))
        base = (base + base.T) / 2
        np.fill_diagonal(base, 0.0)
        weights = uniform_weights(n)
        small = auto_entropy(base, weights)
        large = auto_entropy(base * (1.0 + scale), weights)
        assert large > small

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_transpose_symmetry(self, n, m):
        rng = np.random.default_rng(1)
        cross = rng.uniform(0.5, 3.0, size=(n, m))
        wa, wb = uniform_weights(n), uniform_weights(m)
        assert cross_entropy(cross, wa, wb) == pytest.approx(cross_entropy(cross.T, wb, wa))

    @given(arrays(float, st.integers(1, 10), elements=st.floats(0.1, 10.0)))
    @settings(max_examples=40, deadline=None)
    def test_information_content_bounded_by_extremes(self, distances):
        weights = np.ones_like(distances)
        value = information_content(distances, weights)
        assert np.log(distances.min()) - 1e-9 <= value <= np.log(distances.max()) + 1e-9


# ---------------------------------------------------------------------------- #
# Bootstrap / projection / MDS properties
# ---------------------------------------------------------------------------- #


class TestMiscellaneousProperties:
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_dirichlet_weights_form_distribution(self, n, size):
        weights = sample_uniform_dirichlet_weights(n, size, rng=0)
        assert weights.shape == (size, n)
        assert np.all(weights >= 0)
        assert np.allclose(weights.sum(axis=1), 1.0)

    @given(
        arrays(float, st.integers(2, 200), elements=finite_floats),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_percentile_interval_ordered_and_within_range(self, samples, alpha):
        interval = percentile_interval(samples, alpha)
        assert interval.lower <= interval.upper
        assert interval.lower >= samples.min() - 1e-9
        assert interval.upper <= samples.max() + 1e-9

    @given(
        arrays(float, st.integers(2, 30), elements=finite_floats),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_capped_simplex_projection_feasible(self, values, cap):
        assume(cap * len(values) >= 1.0)
        projected = project_to_capped_simplex(values, cap)
        assert projected.sum() == pytest.approx(1.0, abs=1e-5)
        assert np.all(projected >= -1e-9)
        assert np.all(projected <= cap + 1e-6)

    @given(arrays(float, st.tuples(st.integers(3, 10), st.just(2)), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_mds_reproduces_euclidean_distances(self, points):
        assume(np.unique(points, axis=0).shape[0] == points.shape[0])
        diff = points[:, None, :] - points[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        result = classical_mds(dist, n_components=2)
        diff_e = result.embedding[:, None, :] - result.embedding[None, :, :]
        dist_e = np.sqrt((diff_e**2).sum(axis=2))
        assert np.allclose(dist_e, dist, atol=1e-5 * (1.0 + dist.max()))
