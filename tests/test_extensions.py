"""Tests for the feature-selection extension (the paper's future work)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.extensions import SupervisedFeatureWeighter, dimension_change_scores


def labelled_stream(rng, n_bags=30, change=15, relevant_shift=6.0):
    """Bags where only dimension 0 shifts at the change point; dimensions
    1 and 2 are irrelevant noise."""
    bags = []
    for t in range(n_bags):
        offset = np.array([relevant_shift if t >= change else 0.0, 0.0, 0.0])
        bags.append(rng.normal(offset, [1.0, 1.0, 3.0], size=(40, 3)))
    return bags, [change]


class TestDimensionChangeScores:
    def test_relevant_dimension_scores_highest(self, rng):
        bags, change_points = labelled_stream(rng)
        scores = dimension_change_scores(bags, change_points, window=5)
        assert int(np.argmax(scores)) == 0
        assert scores[0] > 2.0 * max(scores[1], scores[2])

    def test_requires_change_points(self, rng):
        bags, _ = labelled_stream(rng)
        with pytest.raises(ValidationError):
            dimension_change_scores(bags, [], window=5)

    def test_change_point_without_full_window_rejected(self, rng):
        bags, _ = labelled_stream(rng, n_bags=8)
        with pytest.raises(ValidationError):
            dimension_change_scores(bags, [1], window=5)

    def test_scores_shape(self, rng):
        bags, change_points = labelled_stream(rng)
        scores = dimension_change_scores(bags, change_points, window=4)
        assert scores.shape == (3,)
        assert np.all(scores >= 0)


class TestSupervisedFeatureWeighter:
    def test_fit_identifies_relevant_dimension(self, rng):
        bags, change_points = labelled_stream(rng)
        weighter = SupervisedFeatureWeighter(window=5).fit(bags, change_points)
        assert weighter.top_dimensions(1).tolist() == [0]
        assert weighter.weights_[0] == pytest.approx(1.0)
        assert weighter.weights_[1] < 0.5

    def test_floor_keeps_all_dimensions_visible(self, rng):
        bags, change_points = labelled_stream(rng)
        weighter = SupervisedFeatureWeighter(window=5, floor=0.1).fit(bags, change_points)
        assert np.all(weighter.weights_ >= 0.1)

    def test_transform_scales_dimensions(self, rng):
        bags, change_points = labelled_stream(rng)
        weighter = SupervisedFeatureWeighter(window=5).fit(bags, change_points)
        transformed = weighter.transform(bags)
        ratio = np.vstack(transformed)[:, 1].std() / np.vstack(bags)[:, 1].std()
        assert ratio == pytest.approx(weighter.weights_[1], rel=1e-6)

    def test_partial_fit_accumulates(self, rng):
        bags1, cps1 = labelled_stream(rng)
        bags2, cps2 = labelled_stream(rng, relevant_shift=4.0)
        weighter = SupervisedFeatureWeighter(window=5)
        weighter.partial_fit(bags1, cps1)
        first_scores = weighter.scores_.copy()
        weighter.partial_fit(bags2, cps2)
        assert weighter.scores_.shape == first_scores.shape
        assert weighter.top_dimensions(1).tolist() == [0]

    def test_transform_requires_fit(self, rng):
        bags, _ = labelled_stream(rng)
        with pytest.raises(NotFittedError):
            SupervisedFeatureWeighter().transform(bags)

    def test_dimension_mismatch_rejected(self, rng):
        bags, change_points = labelled_stream(rng)
        weighter = SupervisedFeatureWeighter(window=5).fit(bags, change_points)
        with pytest.raises(ValidationError):
            weighter.transform([rng.normal(size=(5, 2))])

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SupervisedFeatureWeighter(power=0.0)
        with pytest.raises(ValidationError):
            SupervisedFeatureWeighter(floor=1.0)

    def test_improves_detection_when_noise_dominates(self, rng):
        # A change confined to one of several dimensions, with a heavy-noise
        # irrelevant dimension: weighting learnt from one labelled stream
        # should raise the detector's score contrast on a fresh stream.
        from repro import BagChangePointDetector
        from repro.evaluation import score_auc

        train_bags, train_cps = labelled_stream(rng, relevant_shift=5.0)
        test_bags, test_cps = labelled_stream(rng, relevant_shift=2.0)
        weighter = SupervisedFeatureWeighter(window=5, power=2.0).fit(train_bags, train_cps)

        detector_kwargs = dict(
            tau=5, tau_test=5, signature_method="exact", n_bootstrap=40, random_state=0
        )
        raw_result = BagChangePointDetector(**detector_kwargs).detect(test_bags)
        weighted_result = BagChangePointDetector(**detector_kwargs).detect(
            weighter.transform(test_bags)
        )
        raw_auc = score_auc(raw_result.scores, raw_result.times, test_cps, tolerance=3)
        weighted_auc = score_auc(
            weighted_result.scores, weighted_result.times, test_cps, tolerance=3
        )
        assert weighted_auc >= raw_auc - 0.05
