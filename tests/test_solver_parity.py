"""Cross-solver parity harness and EMD metric-invariant property tests.

The solver matrix has five entries — the closed-form 1-D fast path, the
transportation simplex, the per-pair HiGHS LP, the block-diagonal
batched LP and the tensor-batched entropic Sinkhorn — and the detector
freely routes pairs between them.  This module pins down what "the same
distance" means across that matrix:

* every *exact* path (everything except Sinkhorn) must agree with the
  per-pair LP reference to within ``1e-9`` on one shared fixture corpus
  covering common-support histograms, unequal total masses, zero-weight
  atoms, single-atom signatures and 1-/2-/3-dimensional supports;
* the entropic path must converge to those exact values under an
  epsilon-annealing schedule;
* every exact backend must satisfy the EMD's metric invariants
  (non-negativity, symmetry, identity of indiscernibles, triangle
  inequality) on seeded random normalised signatures;
* a :class:`~repro.exceptions.SolverError` escaping a *batched* group
  solve must identify the pairs that were stacked into the failing
  solve.
"""

import numpy as np
import pytest

from repro.core import BagChangePointDetector, DetectorConfig
from repro.emd import (
    EMD_SOLVERS,
    PairwiseEMDEngine,
    emd,
    sinkhorn_transport_batch,
    solve_emd_linprog,
    solve_emd_linprog_batch,
    solve_unbalanced_transportation,
)
from repro.emd.ground_distance import cross_distance_matrix
from repro.exceptions import SolverError
from repro.signatures import Signature

#: Maximum disagreement tolerated between any two exact solve paths.
PARITY_TOL = 1e-9

#: Engine backends that compute the exact partial-matching EMD.
EXACT_BACKENDS = tuple(b for b in EMD_SOLVERS if b != "sinkhorn_batch")


def _grid(side, dim):
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    return np.column_stack([axis.ravel() for axis in axes])


def _build_corpus():
    """The shared fixture corpus: one deterministic pair per scenario."""
    rng = np.random.default_rng(20160501)
    grid2 = _grid(3, 2)
    n_bins = grid2.shape[0]
    corpus = {}
    # Common-support histograms: both signatures over one full 2-D grid.
    for i in range(3):
        corpus[f"common-support-{i}"] = (
            Signature(grid2, rng.uniform(0.5, 3.0, n_bins)),
            Signature(grid2, rng.uniform(0.5, 3.0, n_bins)),
        )
    # Unequal total masses: the partial-matching functional moves only
    # min(total_a, total_b) units (paper Eq. 11).
    corpus["unequal-mass"] = (
        Signature(grid2, rng.uniform(0.5, 3.0, n_bins)),
        Signature(grid2, rng.uniform(3.0, 8.0, n_bins)),
    )
    # Zero-weight atoms: sparse occupancy patterns over the shared grid
    # (Signature drops the zero atoms, leaving genuinely distinct
    # sub-supports of one grid — the union-embedding scenario).
    weights_a = rng.uniform(0.5, 3.0, n_bins)
    weights_a[rng.random(n_bins) < 0.4] = 0.0
    weights_a[0] = max(weights_a[0], 1.0)
    weights_b = rng.uniform(0.5, 3.0, n_bins)
    weights_b[rng.random(n_bins) < 0.4] = 0.0
    weights_b[-1] = max(weights_b[-1], 1.0)
    corpus["zero-weight-atoms"] = (
        Signature(grid2[weights_a > 0], weights_a[weights_a > 0]),
        Signature(grid2[weights_b > 0], weights_b[weights_b > 0]),
    )
    # Single-atom signature against a full histogram.
    corpus["single-atom"] = (
        Signature(np.array([[0.5, 1.0]]), np.array([2.0])),
        Signature(grid2, rng.uniform(0.5, 2.0, n_bins)),
    )
    # 1-D supports, equal and unequal masses (the first also exercises
    # the closed-form fast path inside the engine backends).
    x1 = np.sort(rng.normal(size=(5, 1)), axis=0)
    corpus["one-dim-equal-mass"] = (
        Signature(x1, np.full(5, 0.2)),
        Signature(x1 + 0.7, np.full(5, 0.2)),
    )
    corpus["one-dim-unequal-mass"] = (
        Signature(x1, rng.uniform(0.5, 2.0, 5)),
        Signature(x1 * 2.0, rng.uniform(1.5, 3.0, 5)),
    )
    # 3-D supports.
    grid3 = _grid(2, 3)
    corpus["three-dim"] = (
        Signature(grid3, rng.uniform(0.5, 2.0, 8)),
        Signature(grid3 + 0.5, rng.uniform(0.5, 2.0, 8)),
    )
    return corpus


CORPUS = _build_corpus()
CASE_NAMES = sorted(CORPUS)


@pytest.fixture(scope="module")
def reference():
    """Per-pair HiGHS LP distances, the parity reference."""
    return {
        name: emd(sig_a, sig_b, backend="linprog")
        for name, (sig_a, sig_b) in CORPUS.items()
    }


# ---------------------------------------------------------------------- #
# Cross-solver parity on the shared corpus
# ---------------------------------------------------------------------- #
class TestExactSolverParity:
    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_engine_backend_matches_reference(self, backend, name, reference):
        sig_a, sig_b = CORPUS[name]
        with PairwiseEMDEngine(backend=backend) as engine:
            assert engine.compute(sig_a, sig_b) == pytest.approx(
                reference[name], abs=PARITY_TOL
            )

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_engine_backend_matches_reference_in_one_batch(self, backend, reference):
        # The whole corpus in a single compute_pairs call exercises the
        # batched backends' support grouping and union embedding across
        # mixed dimensionalities.
        pairs = [CORPUS[name] for name in CASE_NAMES]
        with PairwiseEMDEngine(backend=backend) as engine:
            distances = engine.compute_pairs(pairs)
        expected = np.array([reference[name] for name in CASE_NAMES])
        np.testing.assert_allclose(distances, expected, atol=PARITY_TOL, rtol=0)

    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_transportation_simplex_matches_reference(self, name, reference):
        sig_a, sig_b = CORPUS[name]
        cost = cross_distance_matrix(sig_a.positions, sig_b.positions, "euclidean")
        plan = solve_unbalanced_transportation(cost, sig_a.weights, sig_b.weights)
        assert plan.cost / plan.total_flow == pytest.approx(
            reference[name], abs=PARITY_TOL
        )

    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_block_diagonal_lp_matches_reference(self, name, reference):
        sig_a, sig_b = CORPUS[name]
        cost = cross_distance_matrix(sig_a.positions, sig_b.positions, "euclidean")
        result = solve_emd_linprog_batch(
            cost, sig_a.weights[None, :], sig_b.weights[None, :]
        )
        assert result.distances[0] == pytest.approx(reference[name], abs=PARITY_TOL)

    def test_block_diagonal_multi_pair_matches_per_pair(self):
        # Many pairs over one shared support in a single stacked solve,
        # including zero-weight atoms, unequal masses and rows whose mass
        # concentrates on a single atom.
        rng = np.random.default_rng(7)
        grid = _grid(3, 2)
        n_bins = grid.shape[0]
        cost = cross_distance_matrix(grid, grid, "euclidean")
        supply = rng.uniform(0.5, 3.0, size=(12, n_bins))
        demand = rng.uniform(0.5, 3.0, size=(12, n_bins))
        supply[3, rng.random(n_bins) < 0.5] = 0.0
        demand[4, rng.random(n_bins) < 0.5] = 0.0
        supply[5] *= 4.0  # unequal totals
        supply[6] = 0.0
        supply[6, 2] = 2.5  # single effective atom
        # Chunking must not change anything: force several chunks.
        batch = solve_emd_linprog_batch(
            cost, supply, demand, max_batch_variables=3 * n_bins * n_bins
        )
        for p in range(12):
            plan = solve_emd_linprog(cost, supply[p], demand[p])
            expected = plan.cost / plan.total_flow if plan.total_flow > 0 else 0.0
            assert batch.distances[p] == pytest.approx(expected, abs=PARITY_TOL)

    def test_block_diagonal_flows_are_feasible_optimal_plans(self):
        rng = np.random.default_rng(11)
        grid = _grid(3, 1)
        cost = cross_distance_matrix(grid, grid, "euclidean")
        supply = rng.uniform(0.5, 2.0, size=(4, 3))
        demand = rng.uniform(0.5, 2.0, size=(4, 3))
        result = solve_emd_linprog_batch(cost, supply, demand, return_flows=True)
        for p in range(4):
            plan = result.plan(p)
            assert np.all(plan.flow >= 0)
            assert np.all(plan.flow.sum(axis=1) <= supply[p] + 1e-9)
            assert np.all(plan.flow.sum(axis=0) <= demand[p] + 1e-9)
            assert plan.total_flow == pytest.approx(
                min(supply[p].sum(), demand[p].sum()), abs=1e-9
            )

    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_sinkhorn_converges_to_exact_under_annealing(self, name):
        # The entropic solver computes the normalised-mass balanced EMD,
        # so the exact target is the partial-matching EMD of the
        # *normalised* signatures (identical for equal-mass pairs).
        sig_a, sig_b = CORPUS[name]
        exact = emd(sig_a.normalized(), sig_b.normalized(), backend="linprog")
        cost = cross_distance_matrix(sig_a.positions, sig_b.positions, "euclidean")
        result = sinkhorn_transport_batch(
            cost,
            sig_a.weights[None, :],
            sig_b.weights[None, :],
            epsilon=[1.0, 0.3, 0.1, 0.03, 0.01],
            max_iter=5000,
        )
        assert result.distances[0] == pytest.approx(exact, rel=5e-3, abs=5e-3)
        # Entropic smoothing can only blur the optimal plan upwards.
        assert result.distances[0] >= exact - 1e-8


# ---------------------------------------------------------------------- #
# Metric invariants per exact backend (seeded property tests)
# ---------------------------------------------------------------------- #
def _random_normalised_signature(rng, dim, max_size=6):
    size = int(rng.integers(1, max_size + 1))
    positions = rng.normal(scale=3.0, size=(size, dim))
    weights = rng.uniform(0.2, 2.0, size)
    return Signature(positions, weights / weights.sum())


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@pytest.mark.parametrize("seed", (0, 1, 2, 3, 4))
class TestMetricInvariants:
    """EMD on normalised signatures is a metric; each backend must honour it."""

    def test_non_negativity_and_symmetry(self, backend, seed):
        rng = np.random.default_rng(1000 + seed)
        dim = int(rng.integers(1, 4))
        sig_a = _random_normalised_signature(rng, dim)
        sig_b = _random_normalised_signature(rng, dim)
        with PairwiseEMDEngine(backend=backend) as engine:
            forward, backward = engine.compute_pairs(
                [(sig_a, sig_b), (sig_b, sig_a)]
            )
        assert forward >= 0.0
        assert forward == pytest.approx(backward, abs=PARITY_TOL)

    def test_identity_of_indiscernibles(self, backend, seed):
        rng = np.random.default_rng(2000 + seed)
        dim = int(rng.integers(1, 4))
        sig_a = _random_normalised_signature(rng, dim)
        distinct = Signature(
            np.array(sig_a.positions) + 5.0, np.array(sig_a.weights)
        )
        with PairwiseEMDEngine(backend=backend) as engine:
            self_distance, cross_distance = engine.compute_pairs(
                [(sig_a, sig_a), (sig_a, distinct)]
            )
        assert self_distance == pytest.approx(0.0, abs=PARITY_TOL)
        assert cross_distance > 1.0  # translation by 5 moves every atom
        assert cross_distance == pytest.approx(5.0 * np.sqrt(dim), rel=1e-6)

    def test_triangle_inequality(self, backend, seed):
        rng = np.random.default_rng(3000 + seed)
        dim = int(rng.integers(1, 4))
        sig_a = _random_normalised_signature(rng, dim)
        sig_b = _random_normalised_signature(rng, dim)
        sig_c = _random_normalised_signature(rng, dim)
        with PairwiseEMDEngine(backend=backend) as engine:
            d_ab, d_bc, d_ac = engine.compute_pairs(
                [(sig_a, sig_b), (sig_b, sig_c), (sig_a, sig_c)]
            )
        assert d_ac <= d_ab + d_bc + PARITY_TOL


# ---------------------------------------------------------------------- #
# Failure context of batched group solves
# ---------------------------------------------------------------------- #
def _grid_signature(rng, grid):
    return Signature(grid, rng.uniform(0.5, 2.0, grid.shape[0]))


class TestBatchedGroupErrorContext:
    def test_solver_error_carries_pair_indices(self):
        error = SolverError("boom", pair_indices=[3, 1])
        assert error.pair_indices == (3, 1)
        assert SolverError("boom").pair_indices is None

    @pytest.mark.parametrize("backend", ("sinkhorn_batch", "linprog_batch"))
    def test_group_failure_reports_compute_pairs_positions(
        self, backend, monkeypatch
    ):
        # Batch layout: positions 0, 2 and 3 form one common-support
        # group; position 1 is an irregular pair that would take the
        # per-pair fallback.  A failure attributed to row 1 of the
        # stacked group must surface as compute_pairs position 2.
        from repro.emd import batch as batch_module

        rng = np.random.default_rng(0)
        grid = _grid(3, 2)
        group_pair = lambda: (_grid_signature(rng, grid), _grid_signature(rng, grid))
        irregular = (
            Signature(rng.normal(size=(4, 2)), rng.uniform(0.5, 2.0, 4)),
            Signature(rng.normal(size=(5, 2)), rng.uniform(0.5, 2.0, 5)),
        )
        pairs = [group_pair(), irregular, group_pair(), group_pair()]

        def failing_solver(*args, **kwargs):
            raise SolverError("synthetic stacked failure", pair_indices=[1])

        target = (
            "sinkhorn_transport_batch"
            if backend == "sinkhorn_batch"
            else "solve_emd_linprog_batch"
        )
        monkeypatch.setattr(batch_module, target, failing_solver)
        engine = PairwiseEMDEngine(backend=backend)
        with pytest.raises(SolverError) as excinfo:
            engine.compute_pairs(pairs)
        assert excinfo.value.pair_indices == (2,)
        assert "[2]" in str(excinfo.value)

    @pytest.mark.parametrize("backend", ("sinkhorn_batch", "linprog_batch"))
    def test_unattributed_group_failure_reports_whole_group(
        self, backend, monkeypatch
    ):
        from repro.emd import batch as batch_module

        rng = np.random.default_rng(1)
        grid = _grid(3, 2)
        pairs = [
            (_grid_signature(rng, grid), _grid_signature(rng, grid))
            for _ in range(3)
        ]

        def failing_solver(*args, **kwargs):
            raise SolverError("synthetic stacked failure")

        target = (
            "sinkhorn_transport_batch"
            if backend == "sinkhorn_batch"
            else "solve_emd_linprog_batch"
        )
        monkeypatch.setattr(batch_module, target, failing_solver)
        engine = PairwiseEMDEngine(backend=backend)
        with pytest.raises(SolverError) as excinfo:
            engine.compute_pairs(pairs)
        assert excinfo.value.pair_indices == (0, 1, 2)

    def test_failed_lp_chunk_reports_batch_local_indices(self, monkeypatch):
        from repro.emd import linprog_batch as linprog_batch_module

        real_linprog = linprog_batch_module.linprog
        calls = {"count": 0}

        def flaky_linprog(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                return real_linprog(*args, **kwargs)

            class Failed:
                success = False
                message = "synthetic HiGHS failure"

            return Failed()

        monkeypatch.setattr(linprog_batch_module, "linprog", flaky_linprog)
        rng = np.random.default_rng(2)
        grid = _grid(3, 1)
        cost = cross_distance_matrix(grid, grid, "euclidean")
        supply = rng.uniform(0.5, 2.0, size=(3, 3))
        demand = rng.uniform(0.5, 2.0, size=(3, 3))
        # One pair per chunk: the first chunk solves, the second fails
        # (and its presolve retry fails too) -> pair index 1, not 0.
        with pytest.raises(SolverError) as excinfo:
            solve_emd_linprog_batch(cost, supply, demand, max_batch_variables=9)
        assert excinfo.value.pair_indices == (1,)
        assert "synthetic HiGHS failure" in str(excinfo.value)


# ---------------------------------------------------------------------- #
# Detector-level wiring
# ---------------------------------------------------------------------- #
class TestDetectorWiring:
    def test_linprog_batch_detect_matches_linprog(self):
        rng = np.random.default_rng(5)
        bags = [rng.normal(0.0, 1.0, size=(30, 2)) for _ in range(8)]
        bags += [rng.normal(3.0, 1.0, size=(30, 2)) for _ in range(8)]

        def run(backend):
            config = DetectorConfig(
                tau=3,
                tau_test=3,
                signature_method="histogram",
                bins=3,
                n_bootstrap=25,
                emd_backend=backend,
                random_state=0,
            )
            with BagChangePointDetector(config) as detector:
                return detector.detect(bags)

        reference = run("linprog")
        batched = run("linprog_batch")
        np.testing.assert_allclose(
            batched.scores, reference.scores, atol=PARITY_TOL, rtol=0
        )
        np.testing.assert_allclose(
            batched.lower, reference.lower, atol=PARITY_TOL, rtol=0
        )

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(Exception):
            DetectorConfig(emd_backend="linprog_block")
