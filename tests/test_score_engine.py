"""Tests for the batched bootstrap scoring engine.

Property-style equivalence tests assert that the batched estimators and
scores are element-wise interchangeable with their scalar counterparts
across score x weighting x window-size combinations, and a seeded
end-to-end test pins ``detect()`` output to a from-scratch scalar
reimplementation of the seed pipeline.
"""

import numpy as np
import pytest

from repro.bootstrap import BayesianBootstrap, percentile_interval
from repro.core import (
    BagChangePointDetector,
    DetectorConfig,
    LogWindowDistances,
    OnlineBagDetector,
    ScoreEngine,
    WindowDistances,
    compute_score,
    score_batch,
)
from repro.core.thresholding import AdaptiveThreshold
from repro.emd import banded_emd_matrix
from repro.exceptions import ConfigurationError, ValidationError
from repro.information import (
    EstimatorConfig,
    auto_entropy,
    auto_entropy_batch,
    cross_entropy,
    cross_entropy_batch,
    information_content,
    information_content_batch,
    log_distances,
    resolve_weights,
)

ATOL = 1e-12

score_weighting_windows = [
    (score, weighting, tau, tau_test)
    for score in ("kl", "lr")
    for weighting in ("uniform", "discounted")
    for tau, tau_test in ((3, 3), (5, 4), (4, 7))
]


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def symmetric_distances(rng, n):
    m = rng.uniform(0.05, 3.0, size=(n, n))
    m = 0.5 * (m + m.T)
    np.fill_diagonal(m, 0.0)
    return m


def random_window(rng, tau, tau_test):
    return WindowDistances(
        ref_pairwise=symmetric_distances(rng, tau),
        test_pairwise=symmetric_distances(rng, tau_test),
        cross=rng.uniform(0.05, 3.0, size=(tau, tau_test)),
    )


class TestBatchedEstimators:
    @pytest.mark.parametrize("config", [EstimatorConfig(), EstimatorConfig(constant=2.5, dimension=3.0, min_distance=1e-6)])
    def test_information_content_matches_scalar(self, rng, config):
        dist = rng.uniform(0.0, 2.0, size=7)  # includes values below min_distance
        weights = rng.dirichlet(np.ones(7), size=30)
        batch = information_content_batch(dist, weights, config=config)
        scalar = np.array([information_content(dist, w, config=config) for w in weights])
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("config", [EstimatorConfig(), EstimatorConfig(constant=-1.0, dimension=0.5)])
    def test_auto_entropy_matches_scalar(self, rng, config):
        dist = symmetric_distances(rng, 6)
        weights = rng.dirichlet(np.ones(6), size=30)
        batch = auto_entropy_batch(dist, weights, config=config)
        scalar = np.array([auto_entropy(dist, w, config=config) for w in weights])
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("config", [EstimatorConfig(), EstimatorConfig(dimension=2.0)])
    def test_cross_entropy_matches_scalar(self, rng, config):
        dist = rng.uniform(0.05, 2.0, size=(5, 8))
        wa = rng.dirichlet(np.ones(5), size=30)
        wb = rng.dirichlet(np.ones(8), size=30)
        batch = cross_entropy_batch(dist, wa, wb, config=config)
        scalar = np.array(
            [cross_entropy(dist, a, b, config=config) for a, b in zip(wa, wb)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=ATOL)

    def test_single_vector_promoted_to_batch(self, rng):
        dist = rng.uniform(0.05, 2.0, size=5)
        w = rng.dirichlet(np.ones(5))
        batch = information_content_batch(dist, w)
        assert batch.shape == (1,)
        assert batch[0] == pytest.approx(information_content(dist, w), abs=ATOL)

    def test_precomputed_log_reused(self, rng):
        config = EstimatorConfig(min_distance=1e-6)
        dist = rng.uniform(0.0, 2.0, size=(4, 4))
        dist = 0.5 * (dist + dist.T)
        np.fill_diagonal(dist, 0.0)
        weights = rng.dirichlet(np.ones(4), size=10)
        precomputed = log_distances(dist, config)
        via_log = auto_entropy_batch(None, weights, config=config, precomputed_log=precomputed)
        via_dist = auto_entropy_batch(dist, weights, config=config)
        np.testing.assert_array_equal(via_log, via_dist)

    def test_missing_distances_and_log_rejected(self, rng):
        with pytest.raises(ValidationError):
            information_content_batch(None, rng.dirichlet(np.ones(3), size=2))

    def test_negative_weights_rejected(self, rng):
        dist = rng.uniform(0.05, 2.0, size=4)
        bad = np.array([[0.5, 0.5, 0.5, -0.5]])
        with pytest.raises(ValidationError):
            information_content_batch(dist, bad)

    def test_zero_mass_row_rejected(self, rng):
        dist = rng.uniform(0.05, 2.0, size=3)
        with pytest.raises(ValidationError):
            information_content_batch(dist, np.zeros((2, 3)))

    def test_shape_mismatch_rejected(self, rng):
        dist = rng.uniform(0.05, 2.0, size=(4, 5))
        wa = rng.dirichlet(np.ones(4), size=3)
        wb = rng.dirichlet(np.ones(5), size=7)  # batch sizes differ
        with pytest.raises(ValidationError):
            cross_entropy_batch(dist, wa, wb)
        with pytest.raises(ValidationError):
            cross_entropy_batch(dist, wa[:, :3], wb[:3])


class TestLogWindowDistances:
    def test_from_window_clips_and_logs_once(self, rng):
        config = EstimatorConfig(min_distance=1e-3)
        window = random_window(rng, 4, 3)
        log_window = LogWindowDistances.from_window(window, config)
        np.testing.assert_array_equal(
            log_window.ref_log, np.log(np.maximum(window.ref_pairwise, 1e-3))
        )
        np.testing.assert_array_equal(
            log_window.cross_log, np.log(np.maximum(window.cross, 1e-3))
        )
        assert log_window.n_reference == 4
        assert log_window.n_test == 3

    def test_shape_validation(self, rng):
        with pytest.raises(ValidationError):
            LogWindowDistances(
                ref_log=np.zeros((3, 2)), test_log=np.zeros((2, 2)), cross_log=np.zeros((3, 2))
            )
        with pytest.raises(ValidationError):
            LogWindowDistances(
                ref_log=np.zeros((3, 3)), test_log=np.zeros((2, 2)), cross_log=np.zeros((2, 3))
            )


class TestScoreBatchEquivalence:
    @pytest.mark.parametrize("score,weighting,tau,tau_test", score_weighting_windows)
    def test_batch_matches_scalar_elementwise(self, rng, score, weighting, tau, tau_test):
        window = random_window(rng, tau, tau_test)
        log_window = LogWindowDistances.from_window(window)
        ref_base = resolve_weights(weighting, tau, is_test=False)
        test_base = resolve_weights(weighting, tau_test, is_test=True)
        bootstrap = BayesianBootstrap(64, rng=rng)
        ref_w = bootstrap.resample_weights(tau, ref_base)
        test_w = bootstrap.resample_weights(tau_test, test_base)

        batch = score_batch(score, log_window, ref_w, test_w)
        scalar = np.array(
            [compute_score(score, window, a, b) for a, b in zip(ref_w, test_w)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("inspection_index", [0, 1, 3])
    def test_lr_inspection_index_forwarded(self, rng, inspection_index):
        window = random_window(rng, 4, 4)
        log_window = LogWindowDistances.from_window(window)
        ref_w = rng.dirichlet(np.ones(4), size=20)
        test_w = rng.dirichlet(np.ones(4), size=20)
        batch = score_batch(
            "lr", log_window, ref_w, test_w, inspection_index=inspection_index
        )
        scalar = np.array(
            [
                compute_score("lr", window, a, b, inspection_index=inspection_index)
                for a, b in zip(ref_w, test_w)
            ]
        )
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=ATOL)

    def test_nondefault_estimator_config(self, rng):
        config = EstimatorConfig(constant=1.0, dimension=2.0, min_distance=1e-6)
        window = random_window(rng, 3, 3)
        log_window = LogWindowDistances.from_window(window, config)
        ref_w = rng.dirichlet(np.ones(3), size=10)
        test_w = rng.dirichlet(np.ones(3), size=10)
        batch = score_batch("kl", log_window, ref_w, test_w)
        scalar = np.array(
            [compute_score("kl", window, a, b, config=config) for a, b in zip(ref_w, test_w)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=ATOL)

    def test_unknown_kind_rejected(self, rng):
        log_window = LogWindowDistances.from_window(random_window(rng, 3, 3))
        w = np.full((2, 3), 1 / 3)
        with pytest.raises(ConfigurationError):
            score_batch("wasserstein", log_window, w, w)

    def test_bad_inspection_index_rejected(self, rng):
        log_window = LogWindowDistances.from_window(random_window(rng, 3, 3))
        w = np.full((2, 3), 1 / 3)
        with pytest.raises(ConfigurationError):
            score_batch("lr", log_window, w, w, inspection_index=3)

    def test_mismatched_batch_sizes_rejected(self, rng):
        log_window = LogWindowDistances.from_window(random_window(rng, 3, 3))
        with pytest.raises(ValidationError):
            score_batch("kl", log_window, np.full((2, 3), 1 / 3), np.full((4, 3), 1 / 3))


class TestScoreEngine:
    @pytest.mark.parametrize("score,weighting,tau,tau_test", score_weighting_windows)
    def test_point_and_interval_match_scalar_loop(self, score, weighting, tau, tau_test):
        window_rng = np.random.default_rng(7)
        window = random_window(window_rng, tau, tau_test)
        config = DetectorConfig(
            tau=tau, tau_test=tau_test, score=score, weighting=weighting,
            n_bootstrap=50, random_state=123,
        )
        engine = ScoreEngine(config, rng=np.random.default_rng(123))
        point, interval = engine.point_and_interval(window)

        # Scalar reference: the seed implementation's per-replicate loop.
        ref_base = resolve_weights(weighting, tau, is_test=False)
        test_base = resolve_weights(weighting, tau_test, is_test=True)
        bootstrap = BayesianBootstrap(50, alpha=config.alpha, rng=np.random.default_rng(123))
        expected_point = compute_score(score, window, ref_base, test_base)
        ref_w = bootstrap.resample_weights(tau, ref_base)
        test_w = bootstrap.resample_weights(tau_test, test_base)
        replicated = np.array(
            [compute_score(score, window, a, b) for a, b in zip(ref_w, test_w)]
        )
        expected = percentile_interval(replicated, config.alpha, point=expected_point)

        assert point == pytest.approx(expected_point, abs=1e-11)
        assert interval.lower == pytest.approx(expected.lower, abs=1e-11)
        assert interval.upper == pytest.approx(expected.upper, abs=1e-11)

    def test_accepts_prebuilt_log_window(self, rng):
        config = DetectorConfig(tau=3, tau_test=3, n_bootstrap=20)
        window = random_window(rng, 3, 3)
        log_window = LogWindowDistances.from_window(window, config.estimator)
        point_a, interval_a = ScoreEngine(config, rng=np.random.default_rng(0)).point_and_interval(window)
        point_b, interval_b = ScoreEngine(config, rng=np.random.default_rng(0)).point_and_interval(log_window)
        assert point_a == point_b
        assert interval_a.lower == interval_b.lower
        assert interval_a.upper == interval_b.upper

    def test_mismatched_log_window_config_rejected(self, rng):
        config = DetectorConfig(
            tau=3, tau_test=3, n_bootstrap=20,
            estimator=EstimatorConfig(min_distance=1e-6),
        )
        engine = ScoreEngine(config, rng=np.random.default_rng(0))
        window = random_window(rng, 3, 3)
        stale = LogWindowDistances.from_window(window)  # default constants
        with pytest.raises(ConfigurationError):
            engine.point_and_interval(stale)

    def test_replicate_scores_shape(self, rng):
        config = DetectorConfig(tau=3, tau_test=3, n_bootstrap=25, random_state=1)
        engine = ScoreEngine(config)
        window = random_window(rng, 3, 3)
        assert engine.replicate_scores(window).shape == (25,)
        assert engine.replicate_scores(window, include_point=True).shape == (26,)


def make_bags(rng, n=16, change_at=8, size=25):
    bags = []
    for i in range(n):
        mean = 0.0 if i < change_at else 3.0
        bags.append(rng.normal(mean, 1.0, size=(size, 2)))
    return bags


class TestEndToEndParity:
    """A seeded detect() run is unchanged by the batched-scoring rewire."""

    @pytest.mark.parametrize("score", ["kl", "lr"])
    def test_detect_matches_scalar_pipeline(self, score):
        bags = make_bags(np.random.default_rng(5))
        kwargs = dict(
            tau=4, tau_test=4, score=score, signature_method="exact",
            n_bootstrap=60, random_state=0,
        )
        result = BagChangePointDetector(**kwargs).detect(bags)

        # From-scratch scalar pipeline, mirroring the seed implementation
        # (the "exact" builder draws nothing from the rng, so the bootstrap
        # stream of a fresh default_rng(0) matches the detector's).
        cfg = DetectorConfig(**kwargs)
        signatures = BagChangePointDetector(DetectorConfig(**kwargs)).build_signatures(bags)
        banded = banded_emd_matrix(signatures, cfg.window_span)
        ref_base = resolve_weights(cfg.weighting, cfg.tau, is_test=False)
        test_base = resolve_weights(cfg.weighting, cfg.tau_test, is_test=True)
        bootstrap = BayesianBootstrap(cfg.n_bootstrap, alpha=cfg.alpha, rng=np.random.default_rng(0))
        threshold = AdaptiveThreshold(cfg.tau_test)

        n = len(signatures)
        assert len(result.points) == n - cfg.window_span + 1
        for point in result.points:
            t = point.time
            ref_pw, test_pw, cross = banded.window(t - cfg.tau, cfg.tau, cfg.tau_test)
            window = WindowDistances(ref_pairwise=ref_pw, test_pairwise=test_pw, cross=cross)
            expected_score = compute_score(
                cfg.score, window, ref_base, test_base,
                config=cfg.estimator, inspection_index=cfg.lr_inspection_index,
            )
            ref_w = bootstrap.resample_weights(cfg.tau, ref_base)
            test_w = bootstrap.resample_weights(cfg.tau_test, test_base)
            replicated = np.array(
                [
                    compute_score(
                        cfg.score, window, a, b,
                        config=cfg.estimator, inspection_index=cfg.lr_inspection_index,
                    )
                    for a, b in zip(ref_w, test_w)
                ]
            )
            expected_interval = percentile_interval(
                replicated, cfg.alpha, point=expected_score
            )
            expected_gamma, expected_alert = threshold.update(t, expected_interval)

            assert point.score == pytest.approx(expected_score, abs=1e-10)
            assert point.interval.lower == pytest.approx(expected_interval.lower, abs=1e-10)
            assert point.interval.upper == pytest.approx(expected_interval.upper, abs=1e-10)
            assert point.gamma == pytest.approx(expected_gamma, abs=1e-10, nan_ok=True)
            assert point.alert == expected_alert

    def test_online_rolling_log_matrix_consistent(self):
        rng = np.random.default_rng(11)
        config = DetectorConfig(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        detector = OnlineBagDetector(config)
        for bag in make_bags(rng, n=12, change_at=6, size=15):
            detector.push(bag)
        np.testing.assert_array_equal(
            detector._log_matrix,
            np.log(np.maximum(detector._window_matrix, config.estimator.min_distance)),
        )

    def test_online_matches_offline_after_rewire(self):
        bags = make_bags(np.random.default_rng(3), n=14, change_at=7, size=20)
        kwargs = dict(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=40, random_state=0
        )
        offline = BagChangePointDetector(**kwargs).detect(bags)
        online = OnlineBagDetector(**kwargs)
        for bag in bags:
            online.push(bag)
        assert len(online.history.points) == len(offline.points)
        for o, f in zip(online.history.points, offline.points):
            assert o.time == f.time
            assert o.score == pytest.approx(f.score, abs=1e-10)
            assert o.interval.lower == pytest.approx(f.interval.lower, abs=1e-10)
            assert o.interval.upper == pytest.approx(f.interval.upper, abs=1e-10)
            assert o.alert == f.alert
