"""Tests for the baseline change-point detectors."""

import numpy as np
import pytest

from repro.baselines import (
    ChangeFinder,
    CusumDetector,
    KernelChangeDetection,
    OneClassSVM,
    RelativeDensityRatioDetector,
    SDAR,
    SingularSpectrumTransformation,
    hankel_matrix,
    mean_sequence,
    median_heuristic_gamma,
    moving_average,
    project_to_capped_simplex,
    rbf_kernel,
    relative_pearson_divergence,
    score_on_means,
    subspace_dissimilarity,
)
from repro.core import BagSequence
from repro.exceptions import ValidationError


def mean_shift_series(rng, n=100, shift=6.0):
    return np.concatenate(
        [rng.normal(0.0, 1.0, n), rng.normal(shift, 1.0, n)]
    ).reshape(-1, 1)


class TestSDAR:
    def test_loss_spikes_at_mean_shift(self, rng):
        series = mean_shift_series(rng)
        losses = SDAR(order=2, discount=0.05, dim=1).score_sequence(series)
        change = 100
        assert losses[change] > np.median(losses[50:95]) + 2.0

    def test_losses_finite(self, rng):
        losses = SDAR(order=2, discount=0.1, dim=1).score_sequence(rng.normal(size=(80, 1)))
        assert np.all(np.isfinite(losses))

    def test_multivariate_input(self, rng):
        series = rng.normal(size=(60, 2))
        losses = SDAR(order=1, discount=0.05, dim=2).score_sequence(series)
        assert losses.shape == (60,)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            SDAR(dim=2).score_sequence(rng.normal(size=(10, 3)))

    def test_invalid_discount(self):
        with pytest.raises(ValidationError):
            SDAR(discount=1.0)
        with pytest.raises(ValidationError):
            SDAR(discount=0.0)

    def test_adapts_after_change(self, rng):
        # Once the model has adapted to the new level the loss should drop
        # again (well after the shift).
        series = mean_shift_series(rng)
        losses = SDAR(order=2, discount=0.1, dim=1).score_sequence(series)
        assert losses[150:190].mean() < losses[100] / 2.0


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.allclose(moving_average(values, 1), values)

    def test_trailing_average(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        out = moving_average(values, 2)
        assert np.allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_warmup_prefix_uses_shorter_window(self):
        values = np.arange(5, dtype=float)
        out = moving_average(values, 10)
        assert out[0] == pytest.approx(0.0)
        assert out[-1] == pytest.approx(values.mean())


class TestChangeFinder:
    def test_score_elevated_after_change(self, rng):
        series = mean_shift_series(rng)
        scores = ChangeFinder(dim=1, discount=0.03).score(series)
        assert scores[100:112].mean() > scores[60:95].mean()

    def test_detect_flags_near_change(self, rng):
        series = mean_shift_series(rng)
        alarms = ChangeFinder(dim=1, discount=0.03).detect(series)
        assert any(98 <= a <= 115 for a in alarms)

    def test_scores_length_matches_series(self, rng):
        series = rng.normal(size=(50, 1))
        assert ChangeFinder(dim=1).score(series).shape == (50,)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            ChangeFinder(dim=2).score(rng.normal(size=(30, 1)))

    def test_two_dimensional_series(self, rng):
        series = np.vstack(
            [rng.normal(0, 1, size=(60, 2)), rng.normal(5, 1, size=(60, 2))]
        )
        scores = ChangeFinder(dim=2, discount=0.05).score(series)
        assert scores[60:70].mean() > scores[35:55].mean()


class TestOneClassSVM:
    def test_projection_satisfies_constraints(self, rng):
        values = rng.normal(size=20)
        projected = project_to_capped_simplex(values, cap=0.2)
        assert projected.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(projected >= -1e-12)
        assert np.all(projected <= 0.2 + 1e-9)

    def test_projection_infeasible_cap_rejected(self):
        with pytest.raises(ValidationError):
            project_to_capped_simplex(np.zeros(3), cap=0.1)

    def test_rbf_kernel_diagonal_ones(self, rng):
        data = rng.normal(size=(10, 2))
        kernel = rbf_kernel(data, data, gamma=0.5)
        assert np.allclose(np.diag(kernel), 1.0)

    def test_median_heuristic_positive(self, rng):
        assert median_heuristic_gamma(rng.normal(size=(30, 3))) > 0

    def test_alpha_respects_dual_constraints(self, rng):
        data = rng.normal(size=(30, 2))
        svm = OneClassSVM(nu=0.2).fit(data)
        assert svm.alpha_.sum() == pytest.approx(1.0, abs=1e-5)
        cap = 1.0 / (0.2 * 30)
        assert np.all(svm.alpha_ <= cap + 1e-6)

    def test_inliers_score_higher_than_far_outliers(self, rng):
        data = rng.normal(size=(40, 2))
        svm = OneClassSVM(nu=0.1).fit(data)
        inlier_scores = svm.decision_function(rng.normal(size=(20, 2)))
        outlier_scores = svm.decision_function(rng.normal(10.0, 1.0, size=(20, 2)))
        assert inlier_scores.mean() > outlier_scores.mean()

    def test_predict_labels(self, rng):
        data = rng.normal(size=(40, 2))
        svm = OneClassSVM(nu=0.1).fit(data)
        labels = svm.predict(np.vstack([data[:5], rng.normal(20.0, 0.1, size=(5, 2))]))
        assert set(labels) <= {-1, 1}
        assert labels[5:].tolist() == [-1] * 5

    def test_not_fitted_error(self, rng):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            OneClassSVM().decision_function(rng.normal(size=(3, 2)))

    def test_invalid_nu(self):
        with pytest.raises(ValidationError):
            OneClassSVM(nu=0.0)


class TestKernelChangeDetection:
    def test_dissimilarity_larger_across_change(self, rng):
        same_a = rng.normal(size=(25, 2))
        same_b = rng.normal(size=(25, 2))
        different = rng.normal(6.0, 1.0, size=(25, 2))
        kcd = KernelChangeDetection(window=25)
        assert kcd.dissimilarity(same_a, different) > kcd.dissimilarity(same_a, same_b)

    def test_score_peaks_near_change(self, rng):
        series = mean_shift_series(rng, n=40, shift=8.0)
        scores = KernelChangeDetection(window=15).score(series)
        assert abs(int(np.argmax(scores)) - 40) <= 6

    def test_dissimilarity_bounded(self, rng):
        a, b = rng.normal(size=(20, 2)), rng.normal(5, 1, size=(20, 2))
        value = KernelChangeDetection(window=20).dissimilarity(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9

    def test_detect_returns_indices(self, rng):
        series = mean_shift_series(rng, n=40, shift=8.0)
        alarms = KernelChangeDetection(window=15).detect(series)
        assert all(isinstance(int(a), int) for a in alarms)


class TestSST:
    def test_hankel_matrix_shape(self):
        values = np.arange(10, dtype=float)
        assert hankel_matrix(values, window=4, n_columns=5).shape == (4, 5)

    def test_hankel_requires_enough_points(self):
        with pytest.raises(ValidationError):
            hankel_matrix(np.arange(5, dtype=float), window=4, n_columns=5)

    def test_subspace_dissimilarity_zero_for_identical(self, rng):
        matrix = rng.normal(size=(6, 6))
        assert subspace_dissimilarity(matrix, matrix, rank=2) == pytest.approx(0.0, abs=1e-9)

    def test_detects_frequency_change_in_smooth_signal(self, rng):
        t = np.arange(400, dtype=float)
        signal = np.concatenate(
            [np.sin(2 * np.pi * t[:200] / 20.0), np.sin(2 * np.pi * t[200:] / 7.0)]
        )
        signal += rng.normal(0, 0.05, 400)
        sst = SingularSpectrumTransformation(window=30, n_columns=30, rank=2)
        scores = sst.score(signal)
        assert abs(int(np.argmax(scores)) - 200) <= 40

    def test_scores_length(self, rng):
        values = rng.normal(size=100)
        scores = SingularSpectrumTransformation(window=10, n_columns=10).score(values)
        assert scores.shape == (100,)

    def test_low_scores_on_stationary_smooth_signal(self, rng):
        t = np.arange(300, dtype=float)
        signal = np.sin(2 * np.pi * t / 25.0) + rng.normal(0, 0.02, 300)
        sst = SingularSpectrumTransformation(window=25, n_columns=25, rank=2)
        scores = sst.score(signal)
        assert np.median(scores[scores > 0]) < 0.1


class TestDensityRatio:
    def test_divergence_larger_across_change(self, rng):
        reference = rng.normal(size=(60, 2))
        same = rng.normal(size=(60, 2))
        different = rng.normal(5.0, 1.0, size=(60, 2))
        d_same = relative_pearson_divergence(reference, same, rng=rng)
        d_diff = relative_pearson_divergence(reference, different, rng=rng)
        assert d_diff > d_same

    def test_divergence_nonnegative(self, rng):
        a, b = rng.normal(size=(40, 1)), rng.normal(size=(40, 1))
        assert relative_pearson_divergence(a, b, rng=rng) >= 0.0

    def test_invalid_alpha_rejected(self, rng):
        with pytest.raises(ValidationError):
            relative_pearson_divergence(
                rng.normal(size=(10, 1)), rng.normal(size=(10, 1)), alpha=1.0
            )

    def test_score_peaks_near_change(self, rng):
        series = mean_shift_series(rng, n=40, shift=6.0)
        scores = RelativeDensityRatioDetector(window=20, n_basis=20).score(series)
        assert abs(int(np.argmax(scores)) - 40) <= 8


class TestCusum:
    def test_alarm_shortly_after_mean_shift(self, rng):
        values = np.concatenate([rng.normal(0, 1, 100), rng.normal(3, 1, 100)])
        _, alarms = CusumDetector(threshold=5.0, calibration=50).score(values)
        post_change = alarms[alarms >= 100]
        assert post_change.size > 0
        assert post_change[0] < 115

    def test_no_alarm_on_stationary_series(self, rng):
        values = rng.normal(0, 1, 300)
        _, alarms = CusumDetector(threshold=8.0, calibration=50).score(values)
        assert alarms.size == 0

    def test_requires_enough_points(self, rng):
        with pytest.raises(ValidationError):
            CusumDetector(calibration=20).score(rng.normal(size=10))

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ValidationError):
            CusumDetector(drift=-1.0)
        with pytest.raises(ValidationError):
            CusumDetector(calibration=1)


class TestOnMeansAdapter:
    def test_mean_sequence_shape(self, rng):
        bags = [rng.normal(size=(n, 3)) for n in (5, 8, 6)]
        assert mean_sequence(bags).shape == (3, 3)

    def test_mean_sequence_from_bag_sequence(self, rng):
        sequence = BagSequence([rng.normal(size=(5, 2)) for _ in range(4)])
        assert mean_sequence(sequence).shape == (4, 2)

    def test_score_on_means_runs_baseline(self, rng):
        # Use a long pre-change segment so both SDAR stages are past their
        # warm-up transient before the change arrives.
        bags = [rng.normal(0, 1, size=(30, 1)) for _ in range(80)]
        bags += [rng.normal(5, 1, size=(30, 1)) for _ in range(40)]
        scores = score_on_means(ChangeFinder(dim=1, discount=0.05), bags)
        assert scores.shape == (120,)
        assert scores[80:95].mean() > scores[50:78].mean()

    def test_mixture_change_invisible_to_means(self, rng):
        # The paper's Fig. 1 argument: a symmetric mixture change leaves the
        # bag means nearly unchanged, so their variance stays tiny compared
        # with the actual component separation.
        bags = [rng.normal(0, 1, size=(300, 1)) for _ in range(50)]
        bags += [
            np.concatenate(
                [rng.normal(-4, 1, size=(150, 1)), rng.normal(4, 1, size=(150, 1))]
            )
            for _ in range(50)
        ]
        means = mean_sequence(bags).ravel()
        assert abs(means[:50].mean() - means[50:].mean()) < 0.5
