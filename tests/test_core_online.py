"""Tests for the streaming detector."""

import numpy as np
import pytest

from repro.core import BagChangePointDetector, DetectorConfig, OnlineBagDetector
from repro.exceptions import (
    ConfigurationError,
    DetectorClosedError,
    SolverError,
    ValidationError,
)
from repro.testing.faults import inject_transient_solver_error


class TestOnlineBagDetector:
    def test_no_output_until_window_full(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        outputs = [detector.push(rng.normal(size=(20, 2))) for _ in range(fast_config.window_span - 1)]
        assert all(o is None for o in outputs)

    def test_emits_one_point_per_push_after_warmup(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        emitted = detector.push_many([rng.normal(size=(20, 2)) for _ in range(12)])
        assert len(emitted) == 12 - fast_config.window_span + 1

    def test_inspection_times_lag_by_tau_test(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        emitted = detector.push_many([rng.normal(size=(20, 2)) for _ in range(12)])
        # After pushing bag s (0-based), the emitted inspection time is
        # s - tau_test + 1.
        assert emitted[0].time == fast_config.tau
        assert emitted[-1].time == 12 - fast_config.tau_test

    def test_detects_mean_shift(self, step_change_bags, fast_config):
        detector = OnlineBagDetector(fast_config)
        emitted = detector.push_many(step_change_bags)
        alarm_times = [p.time for p in emitted if p.alert]
        assert any(7 <= t <= 10 for t in alarm_times)

    def test_history_property(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(20, 2)) for _ in range(10)])
        history = detector.history
        assert len(history) == 10 - fast_config.window_span + 1

    def test_n_seen_counter(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(6)])
        assert detector.n_seen == 6

    def test_matches_offline_scores(self, rng):
        # With identical seeds for signature construction ("exact" makes it
        # deterministic) the point scores must coincide with the offline
        # detector; the bootstrap intervals use different random draws and
        # are not compared.
        bags = [rng.normal(0, 1, size=(15, 2)) for _ in range(6)]
        bags += [rng.normal(4, 1, size=(15, 2)) for _ in range(6)]
        config = DetectorConfig(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        offline = BagChangePointDetector(config).detect(bags)
        online = OnlineBagDetector(config)
        emitted = online.push_many(bags)
        offline_scores = {p.time: p.score for p in offline.points}
        for point in emitted:
            assert point.score == pytest.approx(offline_scores[point.time], rel=1e-9)

    def test_memory_stays_bounded(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(30)])
        # The rolling distance matrix is the only distance storage and its
        # size is fixed by the window span, regardless of stream length.
        span = fast_config.window_span
        assert detector._window_matrix.shape == (span, span)
        assert len(detector._signatures) == span

    def test_config_and_kwargs_mutually_exclusive(self, fast_config):
        with pytest.raises(ValidationError):
            OnlineBagDetector(fast_config, tau=3)

    def test_kwargs_constructor(self, rng):
        detector = OnlineBagDetector(tau=3, tau_test=3, n_bootstrap=20,
                                     signature_method="exact", random_state=0)
        emitted = detector.push_many([rng.normal(size=(10, 2)) for _ in range(7)])
        assert len(emitted) == 2


class TestHistoryBounding:
    def test_history_limit_bounds_retention(self, rng):
        config = DetectorConfig(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20,
            history_limit=4, random_state=0,
        )
        detector = OnlineBagDetector(config)
        emitted = detector.push_many([rng.normal(size=(10, 2)) for _ in range(16)])
        assert len(emitted) == 11
        history = detector.history
        assert len(history) == 4
        # The retained points are the most recent ones.
        assert [p.time for p in history.points] == [p.time for p in emitted[-4:]]

    def test_history_unbounded_by_default(self, rng, fast_config):
        assert fast_config.history_limit is None
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(14)])
        assert len(detector.history) == 14 - fast_config.window_span + 1

    def test_history_result_is_cached_between_pushes(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(10)])
        first = detector.history
        assert detector.history is first  # no re-copy per access
        detector.push(rng.normal(size=(10, 2)))
        second = detector.history
        assert second is not first
        assert len(second) == len(first) + 1

    def test_history_limit_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(history_limit=0)


class TestLifecycle:
    def test_push_after_close_raises_clear_error(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push(rng.normal(size=(10, 2)))
        detector.close()
        with pytest.raises(DetectorClosedError, match="closed"):
            detector.push(rng.normal(size=(10, 2)))
        with pytest.raises(DetectorClosedError):
            detector.push_masked(rng.normal(size=(10, 2)))

    def test_close_is_idempotent(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push(rng.normal(size=(10, 2)))
        detector.close()
        detector.close()
        assert detector.closed

    def test_context_manager_closes(self, rng, fast_config):
        with OnlineBagDetector(fast_config) as detector:
            detector.push(rng.normal(size=(10, 2)))
        assert detector.closed

    def test_history_readable_after_close(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(10)])
        detector.close()
        assert len(detector.history) == 10 - fast_config.window_span + 1


@pytest.mark.faults
class TestPushRetryability:
    def _config(self, method="exact"):
        return DetectorConfig(
            tau=3, tau_test=3, signature_method=method, n_clusters=4,
            n_bootstrap=20, random_state=0,
        )

    @pytest.mark.parametrize("method", ["exact", "kmeans"])
    def test_failed_push_mutates_nothing(self, rng, method):
        detector = OnlineBagDetector(self._config(method))
        bags = [rng.normal(size=(12, 2)) for _ in range(12)]
        for bag in bags[:8]:
            detector.push(bag)
        n_seen = detector.n_seen
        signatures = list(detector._signatures)
        window = detector._window_matrix.copy()
        logged = detector._log_matrix.copy()
        rng_state = repr(detector._rng.bit_generator.state)
        history_len = len(detector.history)
        with inject_transient_solver_error(times=1):
            with pytest.raises(SolverError):
                detector.push(bags[8])
        assert detector.n_seen == n_seen
        assert list(detector._signatures) == signatures
        assert np.array_equal(detector._window_matrix, window)
        assert np.array_equal(detector._log_matrix, logged)
        # The generator is rewound past the signature-construction draws
        # (kmeans consumes them before the solve), so a retry replays
        # the identical stochastic choices.
        assert repr(detector._rng.bit_generator.state) == rng_state
        assert len(detector.history) == history_len

    @pytest.mark.parametrize("method", ["exact", "kmeans"])
    def test_retried_push_converges_with_unfaulted_run(self, rng, method):
        bags = [rng.normal(size=(12, 2)) for _ in range(14)]
        reference = OnlineBagDetector(self._config(method))
        for bag in bags:
            reference.push(bag)
        faulted = OnlineBagDetector(self._config(method))
        for bag in bags[:9]:
            faulted.push(bag)
        with inject_transient_solver_error(times=1):
            with pytest.raises(SolverError):
                faulted.push(bags[9])
        for bag in bags[9:]:  # retry the failed bag, then the rest
            faulted.push(bag)
        ref_points = reference.history.points
        retry_points = faulted.history.points
        assert [p.time for p in ref_points] == [p.time for p in retry_points]
        for p, q in zip(ref_points, retry_points):
            assert abs(p.score - q.score) <= 1e-12
            assert abs(p.interval.lower - q.interval.lower) <= 1e-12
            assert abs(p.interval.upper - q.interval.upper) <= 1e-12
            assert p.alert == q.alert
