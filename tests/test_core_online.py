"""Tests for the streaming detector."""

import pytest

from repro.core import BagChangePointDetector, DetectorConfig, OnlineBagDetector
from repro.exceptions import ValidationError


class TestOnlineBagDetector:
    def test_no_output_until_window_full(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        outputs = [detector.push(rng.normal(size=(20, 2))) for _ in range(fast_config.window_span - 1)]
        assert all(o is None for o in outputs)

    def test_emits_one_point_per_push_after_warmup(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        emitted = detector.push_many([rng.normal(size=(20, 2)) for _ in range(12)])
        assert len(emitted) == 12 - fast_config.window_span + 1

    def test_inspection_times_lag_by_tau_test(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        emitted = detector.push_many([rng.normal(size=(20, 2)) for _ in range(12)])
        # After pushing bag s (0-based), the emitted inspection time is
        # s - tau_test + 1.
        assert emitted[0].time == fast_config.tau
        assert emitted[-1].time == 12 - fast_config.tau_test

    def test_detects_mean_shift(self, step_change_bags, fast_config):
        detector = OnlineBagDetector(fast_config)
        emitted = detector.push_many(step_change_bags)
        alarm_times = [p.time for p in emitted if p.alert]
        assert any(7 <= t <= 10 for t in alarm_times)

    def test_history_property(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(20, 2)) for _ in range(10)])
        history = detector.history
        assert len(history) == 10 - fast_config.window_span + 1

    def test_n_seen_counter(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(6)])
        assert detector.n_seen == 6

    def test_matches_offline_scores(self, rng):
        # With identical seeds for signature construction ("exact" makes it
        # deterministic) the point scores must coincide with the offline
        # detector; the bootstrap intervals use different random draws and
        # are not compared.
        bags = [rng.normal(0, 1, size=(15, 2)) for _ in range(6)]
        bags += [rng.normal(4, 1, size=(15, 2)) for _ in range(6)]
        config = DetectorConfig(
            tau=3, tau_test=3, signature_method="exact", n_bootstrap=20, random_state=0
        )
        offline = BagChangePointDetector(config).detect(bags)
        online = OnlineBagDetector(config)
        emitted = online.push_many(bags)
        offline_scores = {p.time: p.score for p in offline.points}
        for point in emitted:
            assert point.score == pytest.approx(offline_scores[point.time], rel=1e-9)

    def test_memory_stays_bounded(self, rng, fast_config):
        detector = OnlineBagDetector(fast_config)
        detector.push_many([rng.normal(size=(10, 2)) for _ in range(30)])
        # The rolling distance matrix is the only distance storage and its
        # size is fixed by the window span, regardless of stream length.
        span = fast_config.window_span
        assert detector._window_matrix.shape == (span, span)
        assert len(detector._signatures) == span

    def test_config_and_kwargs_mutually_exclusive(self, fast_config):
        with pytest.raises(ValidationError):
            OnlineBagDetector(fast_config, tau=3)

    def test_kwargs_constructor(self, rng):
        detector = OnlineBagDetector(tau=3, tau_test=3, n_bootstrap=20,
                                     signature_method="exact", random_state=0)
        emitted = detector.push_many([rng.normal(size=(10, 2)) for _ in range(7)])
        assert len(emitted) == 2
