"""Tests for the change-point scores (Eq. 16 and Eq. 17) and window distances."""

import numpy as np
import pytest

from repro.core import WindowDistances, compute_score, score_likelihood_ratio, score_symmetric_kl
from repro.emd import cross_emd_matrix, emd_matrix
from repro.exceptions import ConfigurationError, ValidationError
from repro.information import uniform_weights
from repro.signatures import Signature


def make_window(rng, ref_offset=0.0, test_offset=0.0, tau=4, tau_test=4):
    """Window distances from synthetic Gaussian signatures with given offsets."""
    ref = [
        Signature(rng.normal(ref_offset, 1.0, size=(10, 2)), np.ones(10)) for _ in range(tau)
    ]
    test = [
        Signature(rng.normal(test_offset, 1.0, size=(10, 2)), np.ones(10))
        for _ in range(tau_test)
    ]
    return WindowDistances(
        ref_pairwise=emd_matrix(ref),
        test_pairwise=emd_matrix(test),
        cross=cross_emd_matrix(ref, test),
    )


class TestWindowDistances:
    def test_shapes_exposed(self, rng):
        window = make_window(rng, tau=3, tau_test=5)
        assert window.n_reference == 3
        assert window.n_test == 5

    def test_non_square_ref_rejected(self):
        with pytest.raises(ValidationError):
            WindowDistances(np.zeros((2, 3)), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_cross_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            WindowDistances(np.zeros((2, 2)), np.zeros((3, 3)), np.zeros((3, 2)))


class TestScoreSymmetricKL:
    def test_larger_when_distributions_differ(self, rng):
        same = make_window(rng, 0.0, 0.0)
        different = make_window(rng, 0.0, 6.0)
        w_ref, w_test = uniform_weights(4), uniform_weights(4)
        assert score_symmetric_kl(different, w_ref, w_test) > score_symmetric_kl(
            same, w_ref, w_test
        )

    def test_score_near_zero_for_identical_windows(self, rng):
        window = make_window(rng, 0.0, 0.0)
        value = score_symmetric_kl(window, uniform_weights(4), uniform_weights(4))
        assert abs(value) < 1.0

    def test_weight_length_mismatch_rejected(self, rng):
        window = make_window(rng)
        with pytest.raises(ValidationError):
            score_symmetric_kl(window, uniform_weights(3), uniform_weights(4))

    def test_matches_entropy_decomposition(self, rng):
        from repro.information import auto_entropy, cross_entropy

        window = make_window(rng, 0.0, 2.0)
        w_ref, w_test = uniform_weights(4), uniform_weights(4)
        expected = cross_entropy(window.cross, w_ref, w_test) - 0.5 * (
            auto_entropy(window.ref_pairwise, w_ref)
            + auto_entropy(window.test_pairwise, w_test)
        )
        assert score_symmetric_kl(window, w_ref, w_test) == pytest.approx(expected)

    def test_monotone_in_shift_magnitude(self, rng):
        w = uniform_weights(4)
        shifts = [0.0, 2.0, 6.0]
        scores = [
            score_symmetric_kl(make_window(np.random.default_rng(0), 0.0, s), w, w)
            for s in shifts
        ]
        assert scores[0] < scores[1] < scores[2]


class TestScoreLikelihoodRatio:
    def test_positive_when_test_differs_from_reference(self, rng):
        window = make_window(rng, 0.0, 6.0)
        value = score_likelihood_ratio(window, uniform_weights(4), uniform_weights(4))
        assert value > 0.0

    def test_near_zero_for_identical_windows(self, rng):
        values = [
            score_likelihood_ratio(
                make_window(np.random.default_rng(seed), 0.0, 0.0),
                uniform_weights(4),
                uniform_weights(4),
            )
            for seed in range(5)
        ]
        assert abs(np.mean(values)) < 0.5

    def test_inspection_index_out_of_range(self, rng):
        window = make_window(rng)
        with pytest.raises(ConfigurationError):
            score_likelihood_ratio(
                window, uniform_weights(4), uniform_weights(4), inspection_index=10
            )

    def test_lr_more_sensitive_than_kl_to_single_bag(self, rng):
        # Construct a test window where only the inspection bag differs: the
        # LR score (which focuses on S_t) should react at least as strongly
        # relative to its no-change value than the KL score does.
        ref = [Signature(rng.normal(0, 1, size=(10, 2)), np.ones(10)) for _ in range(4)]
        test = [Signature(rng.normal(8, 1, size=(10, 2)), np.ones(10))]
        test += [Signature(rng.normal(0, 1, size=(10, 2)), np.ones(10)) for _ in range(3)]
        window = WindowDistances(
            ref_pairwise=emd_matrix(ref),
            test_pairwise=emd_matrix(test),
            cross=cross_emd_matrix(ref, test),
        )
        w = uniform_weights(4)
        assert score_likelihood_ratio(window, w, w) > 0.0


class TestComputeScore:
    def test_dispatch_kl(self, rng):
        window = make_window(rng)
        w = uniform_weights(4)
        assert compute_score("kl", window, w, w) == pytest.approx(
            score_symmetric_kl(window, w, w)
        )

    def test_dispatch_lr(self, rng):
        window = make_window(rng)
        w = uniform_weights(4)
        assert compute_score("lr", window, w, w) == pytest.approx(
            score_likelihood_ratio(window, w, w)
        )

    def test_unknown_kind_rejected(self, rng):
        window = make_window(rng)
        w = uniform_weights(4)
        with pytest.raises(ConfigurationError):
            compute_score("wasserstein", window, w, w)
