"""Tests for the bipartite graph model, feature extraction and generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.graphs import (
    BipartiteGraph,
    CommunityModel,
    FEATURE_NAMES,
    destination_degrees,
    destination_in_weights,
    destination_second_degrees,
    edge_weights,
    extract_all_features,
    extract_feature,
    feature_bag_sequences,
    sample_community_graph,
    source_degrees,
    source_out_weights,
    source_second_degrees,
)


@pytest.fixture
def figure9_graph():
    """The example graph of paper Fig. 9: 5 source nodes, 4 destination nodes.

    Edges (1-based in the paper, 0-based here):
      source 1 -> dest 1 (weight 12), source 1 -> dest 3 (weight 8),
      source 2 -> dest 1 (weight 2),  source 3 -> dest 2 (weight 7),
      source 4 -> dest 3 (weight 9),  source 5 -> dest 3 (weight 9),
      source 5 -> dest 4 (weight 4).
    Weights are chosen so the totals quoted in the paper hold:
      out-weight of source 1 = 20, out-weight of source 4 = 9,
      in-weight of dest 1 = 14, in-weight of dest 3 = 26.
    """
    weights = np.zeros((5, 4))
    weights[0, 0] = 12.0
    weights[0, 2] = 8.0
    weights[1, 0] = 2.0
    weights[2, 1] = 7.0
    weights[3, 2] = 9.0
    weights[4, 2] = 9.0
    weights[4, 3] = 4.0
    return BipartiteGraph(weights)


class TestBipartiteGraph:
    def test_sizes(self, figure9_graph):
        assert figure9_graph.n_sources == 5
        assert figure9_graph.n_destinations == 4
        assert figure9_graph.n_edges == 7

    def test_total_weight(self, figure9_graph):
        assert figure9_graph.total_weight == pytest.approx(51.0)

    def test_adjacency_binary(self, figure9_graph):
        adjacency = figure9_graph.adjacency
        assert set(np.unique(adjacency)) <= {0.0, 1.0}

    def test_edge_list_round_trip(self, figure9_graph):
        edges = figure9_graph.edge_list()
        rebuilt = BipartiteGraph.from_edges(edges, n_sources=5, n_destinations=4)
        assert np.allclose(rebuilt.weights, figure9_graph.weights)

    def test_from_edges_sums_duplicates(self):
        graph = BipartiteGraph.from_edges([(0, 0, 1.0), (0, 0, 2.0)])
        assert graph.weights[0, 0] == pytest.approx(3.0)

    def test_from_edges_empty_rejected(self):
        with pytest.raises(ValidationError):
            BipartiteGraph.from_edges([])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError):
            BipartiteGraph(np.array([[-1.0]]))

    def test_empty_side_rejected(self):
        with pytest.raises(ValidationError):
            BipartiteGraph(np.zeros((0, 3)))

    def test_rearranged_permutes(self, figure9_graph):
        rearranged = figure9_graph.rearranged([4, 3, 2, 1, 0], [0, 1, 2, 3])
        assert rearranged.weights[0, 2] == figure9_graph.weights[4, 2]

    def test_rearranged_requires_permutation(self, figure9_graph):
        with pytest.raises(ValidationError):
            figure9_graph.rearranged([0, 0, 1, 2, 3], [0, 1, 2, 3])

    def test_weights_immutable(self, figure9_graph):
        with pytest.raises(ValueError):
            figure9_graph.weights[0, 0] = 99.0


class TestFigure9Features:
    """Check the feature values the paper quotes for its Fig. 9 example."""

    def test_source_degree_of_node_1(self, figure9_graph):
        # "source node 1 is connected to 2 destination nodes, so its degree is 2"
        assert source_degrees(figure9_graph)[0] == 2

    def test_destination_degree_of_node_1(self, figure9_graph):
        # "destination node 1 is connected to 2 source nodes, so its degree is 2"
        assert destination_degrees(figure9_graph)[0] == 2

    def test_second_degree_of_source_1(self, figure9_graph):
        # "its second degree is 3" (source nodes 2, 4 and 5 share destinations)
        assert source_second_degrees(figure9_graph)[0] == 3

    def test_second_degree_of_destination_1(self, figure9_graph):
        # "destination node 1 ... its second degree is 1"
        assert destination_second_degrees(figure9_graph)[0] == 1

    def test_out_weight_of_sources(self, figure9_graph):
        # "it would be 20 for source node 1, and 9 for source node 4"
        out = source_out_weights(figure9_graph)
        assert out[0] == pytest.approx(20.0)
        assert out[3] == pytest.approx(9.0)

    def test_in_weight_of_destinations(self, figure9_graph):
        # "14 for destination node 1, and 26 for destination node 3"
        inw = destination_in_weights(figure9_graph)
        assert inw[0] == pytest.approx(14.0)
        assert inw[2] == pytest.approx(26.0)

    def test_edge_weights_feature(self, figure9_graph):
        values = edge_weights(figure9_graph)
        assert values.shape == (7,)
        assert values.sum() == pytest.approx(51.0)


class TestFeatureExtraction:
    def test_extract_feature_column_shape(self, figure9_graph):
        for fid in FEATURE_NAMES:
            bag = extract_feature(figure9_graph, fid)
            assert bag.ndim == 2 and bag.shape[1] == 1

    def test_extract_all_features_keys(self, figure9_graph):
        assert sorted(extract_all_features(figure9_graph)) == list(range(1, 8))

    def test_unknown_feature_rejected(self, figure9_graph):
        with pytest.raises(ConfigurationError):
            extract_feature(figure9_graph, 8)

    def test_edge_weight_bag_for_empty_graph(self):
        graph = BipartiteGraph(np.zeros((2, 2)))
        assert extract_feature(graph, 7).shape == (1, 1)

    def test_feature_bag_sequences(self, figure9_graph):
        sequences = feature_bag_sequences([figure9_graph, figure9_graph])
        assert set(sequences) == set(range(1, 8))
        assert all(len(bags) == 2 for bags in sequences.values())

    def test_bag_sizes_track_node_counts(self, figure9_graph):
        sequences = feature_bag_sequences([figure9_graph])
        assert len(sequences[1][0]) == figure9_graph.n_sources
        assert len(sequences[2][0]) == figure9_graph.n_destinations
        assert len(sequences[7][0]) == figure9_graph.n_edges


class TestCommunityModel:
    def test_valid_model(self):
        model = CommunityModel(
            rate_matrix=np.array([[10.0, 3.0], [1.0, 5.0]]),
            source_fractions=np.array([0.5, 0.5]),
            destination_fractions=np.array([0.5, 0.5]),
        )
        assert model.rate_matrix.shape == (2, 2)

    def test_fraction_sum_enforced(self):
        with pytest.raises(ValidationError):
            CommunityModel(
                rate_matrix=np.ones((2, 2)),
                source_fractions=np.array([0.6, 0.6]),
                destination_fractions=np.array([0.5, 0.5]),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            CommunityModel(
                rate_matrix=np.ones((2, 3)),
                source_fractions=np.array([0.5, 0.5]),
                destination_fractions=np.array([0.5, 0.5]),
            )

    def test_negative_rates_rejected(self):
        with pytest.raises(ValidationError):
            CommunityModel(
                rate_matrix=-np.ones((2, 2)),
                source_fractions=np.array([0.5, 0.5]),
                destination_fractions=np.array([0.5, 0.5]),
            )

    def test_with_rates_and_partitions(self):
        model = CommunityModel(
            rate_matrix=np.ones((2, 2)),
            source_fractions=np.array([0.5, 0.5]),
            destination_fractions=np.array([0.5, 0.5]),
        )
        updated = model.with_rates(2 * np.ones((2, 2))).with_partitions(0.3, 0.7)
        assert updated.rate_matrix[0, 0] == 2.0
        assert updated.source_fractions[0] == pytest.approx(0.3)


class TestSampleCommunityGraph:
    def _model(self, mean_nodes=40.0):
        return CommunityModel(
            rate_matrix=np.array([[10.0, 1.0], [1.0, 10.0]]),
            source_fractions=np.array([0.5, 0.5]),
            destination_fractions=np.array([0.5, 0.5]),
            mean_sources=mean_nodes,
            mean_destinations=mean_nodes,
        )

    def test_node_counts_near_poisson_mean(self):
        graphs = [sample_community_graph(self._model(), rng=i) for i in range(20)]
        mean_sources = np.mean([g.n_sources for g in graphs])
        assert 30 < mean_sources < 50

    def test_higher_rates_more_traffic(self):
        low = self._model()
        high = low.with_rates(low.rate_matrix * 5.0)
        g_low = sample_community_graph(low, rng=0)
        g_high = sample_community_graph(high, rng=0)
        assert g_high.total_weight > g_low.total_weight

    def test_fixed_total_weight(self):
        graph = sample_community_graph(self._model(), rng=0, fixed_total_weight=5000)
        assert graph.total_weight == pytest.approx(5000.0)

    def test_fixed_total_weight_must_be_positive(self):
        with pytest.raises(ValidationError):
            sample_community_graph(self._model(), rng=0, fixed_total_weight=-1.0)

    def test_index_label_carried(self):
        graph = sample_community_graph(self._model(), rng=0, index=17)
        assert graph.index == 17

    def test_reproducible_with_seed(self):
        g1 = sample_community_graph(self._model(), rng=5)
        g2 = sample_community_graph(self._model(), rng=5)
        assert np.allclose(g1.weights, g2.weights)

    def test_community_structure_visible_without_shuffle(self):
        # Without shuffling, the within-community blocks have higher average
        # weight than the cross-community blocks for a diagonal-heavy model.
        graph = sample_community_graph(self._model(), rng=0, shuffle_nodes=False)
        ns, nd = graph.n_sources, graph.n_destinations
        block_11 = graph.weights[: ns // 2, : nd // 2].mean()
        block_12 = graph.weights[: ns // 2, nd // 2 :].mean()
        assert block_11 > block_12
