"""Tests for the vector quantisers (k-means, k-medoids, histogram, LVQ)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.quantize import (
    HistogramQuantizer,
    KMeans,
    KMedoids,
    LearningVectorQuantizer,
    QuantizationResult,
    counts_from_labels,
    drop_empty_clusters,
    kmeans_plusplus_init,
    pairwise_distances,
)


def three_blobs(rng, n_per_blob=40):
    """Three well-separated Gaussian blobs in 2-D."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    return np.vstack(
        [rng.normal(c, 0.5, size=(n_per_blob, 2)) for c in centers]
    ), centers


class TestQuantizationResult:
    def test_counts_sum_to_n_points(self):
        result = QuantizationResult(
            centers=np.zeros((2, 1)), counts=np.array([3.0, 4.0]), labels=np.zeros(7, int)
        )
        assert result.n_points == 7
        assert result.n_clusters == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            QuantizationResult(
                centers=np.zeros((2, 1)), counts=np.array([3.0]), labels=np.zeros(3, int)
            )


class TestHelpers:
    def test_counts_from_labels(self):
        counts = counts_from_labels(np.array([0, 0, 2, 1, 2, 2]), 4)
        assert counts.tolist() == [2.0, 1.0, 3.0, 0.0]

    def test_drop_empty_clusters_reindexes(self):
        centers = np.array([[0.0], [1.0], [2.0]])
        counts = np.array([2.0, 0.0, 1.0])
        labels = np.array([0, 0, 2])
        result = drop_empty_clusters(centers, counts, labels)
        assert result.centers.shape == (2, 1)
        assert result.labels.tolist() == [0, 0, 1]

    def test_drop_empty_clusters_noop_when_full(self):
        centers = np.array([[0.0], [1.0]])
        counts = np.array([1.0, 2.0])
        labels = np.array([0, 1, 1])
        result = drop_empty_clusters(centers, counts, labels)
        assert np.array_equal(result.centers, centers)


class TestKMeansPlusPlus:
    def test_selects_requested_number(self, rng):
        data, _ = three_blobs(rng)
        centers = kmeans_plusplus_init(data, 3, rng)
        assert centers.shape == (3, 2)

    def test_centers_are_data_points(self, rng):
        data, _ = three_blobs(rng)
        centers = kmeans_plusplus_init(data, 3, rng)
        for c in centers:
            assert np.any(np.all(np.isclose(data, c), axis=1))

    def test_handles_identical_points(self, rng):
        data = np.ones((10, 2))
        centers = kmeans_plusplus_init(data, 3, rng)
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_three_blobs(self, rng):
        data, true_centers = three_blobs(rng)
        result = KMeans(3, random_state=0).fit(data)
        assert result.n_clusters == 3
        # every true centre is close to some estimated centre
        for c in true_centers:
            distances = np.linalg.norm(result.centers - c, axis=1)
            assert distances.min() < 1.0

    def test_counts_sum_to_bag_size(self, rng):
        data, _ = three_blobs(rng)
        result = KMeans(3, random_state=0).fit(data)
        assert result.counts.sum() == len(data)

    def test_labels_match_counts(self, rng):
        data, _ = three_blobs(rng)
        result = KMeans(3, random_state=0).fit(data)
        recount = np.bincount(result.labels, minlength=result.n_clusters)
        assert np.array_equal(recount.astype(float), result.counts)

    def test_reduces_k_for_few_unique_points(self):
        data = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        result = KMeans(5, random_state=0).fit(data)
        assert result.n_clusters <= 2

    def test_reproducible_with_seed(self, rng):
        data, _ = three_blobs(rng)
        r1 = KMeans(3, random_state=42).fit(data)
        r2 = KMeans(3, random_state=42).fit(data)
        assert np.allclose(np.sort(r1.centers, axis=0), np.sort(r2.centers, axis=0))

    def test_inertia_decreases_with_more_clusters(self, rng):
        data, _ = three_blobs(rng)
        inertia_2 = KMeans(2, random_state=0).fit(data).inertia
        inertia_6 = KMeans(6, random_state=0).fit(data).inertia
        assert inertia_6 <= inertia_2

    def test_fit_predict_returns_labels(self, rng):
        data, _ = three_blobs(rng)
        labels = KMeans(3, random_state=0).fit_predict(data)
        assert labels.shape == (len(data),)

    def test_result_property_requires_fit(self):
        with pytest.raises(NotFittedError):
            _ = KMeans(3).result_

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(3, tol=-1.0)

    def test_one_dimensional_input_promoted(self, rng):
        data = rng.normal(size=50)
        result = KMeans(4, random_state=0).fit(data)
        assert result.centers.shape[1] == 1


class TestKMedoids:
    def test_recovers_three_blobs(self, rng):
        data, true_centers = three_blobs(rng)
        result = KMedoids(3, random_state=0).fit(data)
        assert result.n_clusters == 3
        for c in true_centers:
            assert np.linalg.norm(result.centers - c, axis=1).min() < 1.0

    def test_medoids_are_data_points(self, rng):
        data, _ = three_blobs(rng)
        result = KMedoids(3, random_state=0).fit(data)
        for center in result.centers:
            assert np.any(np.all(np.isclose(data, center), axis=1))

    def test_counts_sum_to_bag_size(self, rng):
        data, _ = three_blobs(rng, n_per_blob=20)
        result = KMedoids(3, random_state=0).fit(data)
        assert result.counts.sum() == len(data)

    def test_custom_metric(self, rng):
        data, _ = three_blobs(rng, n_per_blob=10)
        manhattan = lambda a, b: float(np.abs(a - b).sum())
        result = KMedoids(3, metric=manhattan, random_state=0).fit(data)
        assert result.n_clusters == 3

    def test_k_larger_than_n(self):
        data = np.array([[0.0], [5.0]])
        result = KMedoids(5).fit(data)
        assert result.n_clusters <= 2

    def test_pairwise_distances_euclidean_symmetric(self, rng):
        data = rng.normal(size=(10, 3))
        dist = pairwise_distances(data)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)


class TestHistogramQuantizer:
    def test_1d_counts_preserved(self, rng):
        data = rng.normal(size=200)
        result = HistogramQuantizer(bins=10).fit(data)
        assert result.counts.sum() == 200

    def test_centers_inside_range(self):
        data = np.linspace(0.0, 1.0, 50)
        result = HistogramQuantizer(bins=5, range=(0.0, 1.0)).fit(data)
        assert np.all(result.centers >= 0.0) and np.all(result.centers <= 1.0)

    def test_fixed_range_grid_alignment(self):
        quantizer = HistogramQuantizer(bins=4, range=(0.0, 4.0))
        r1 = quantizer.fit(np.array([0.5, 1.5]))
        r2 = quantizer.fit(np.array([2.5, 3.5]))
        together = np.concatenate([r1.centers.ravel(), r2.centers.ravel()])
        assert np.allclose(sorted(together), [0.5, 1.5, 2.5, 3.5])

    def test_2d_binning(self, rng):
        data = rng.uniform(0, 1, size=(100, 2))
        result = HistogramQuantizer(bins=3).fit(data)
        assert result.centers.shape[1] == 2
        assert result.counts.sum() == 100

    def test_per_dimension_bins(self, rng):
        data = rng.uniform(0, 1, size=(100, 2))
        result = HistogramQuantizer(bins=[2, 5]).fit(data)
        assert result.centers.shape[0] <= 10

    def test_bins_dimension_mismatch_rejected(self, rng):
        data = rng.uniform(0, 1, size=(10, 2))
        with pytest.raises(ValidationError):
            HistogramQuantizer(bins=[2, 3, 4]).fit(data)

    def test_out_of_range_values_clipped_to_edge_bins(self):
        result = HistogramQuantizer(bins=4, range=(0.0, 1.0)).fit(np.array([-5.0, 5.0]))
        assert result.counts.sum() == 2

    def test_degenerate_range_handled(self):
        result = HistogramQuantizer(bins=3).fit(np.array([2.0, 2.0, 2.0]))
        assert result.counts.sum() == 3

    def test_invalid_range_shape_rejected(self, rng):
        data = rng.uniform(size=(10, 2))
        with pytest.raises(ValidationError):
            HistogramQuantizer(bins=3, range=[0.0, 1.0, 2.0]).fit(data)


class TestLearningVectorQuantizer:
    def test_recovers_three_blobs(self, rng):
        data, true_centers = three_blobs(rng)
        result = LearningVectorQuantizer(3, random_state=0, n_epochs=20).fit(data)
        for c in true_centers:
            assert np.linalg.norm(result.centers - c, axis=1).min() < 2.0

    def test_counts_sum_to_bag_size(self, rng):
        data, _ = three_blobs(rng)
        result = LearningVectorQuantizer(3, random_state=0).fit(data)
        assert result.counts.sum() == len(data)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValidationError):
            LearningVectorQuantizer(3, learning_rate=0.0)
        with pytest.raises(ValidationError):
            LearningVectorQuantizer(3, learning_rate=1.5)

    def test_reproducible_with_seed(self, rng):
        data, _ = three_blobs(rng, n_per_blob=15)
        r1 = LearningVectorQuantizer(3, random_state=1).fit(data)
        r2 = LearningVectorQuantizer(3, random_state=1).fit(data)
        assert np.allclose(r1.centers, r2.centers)
