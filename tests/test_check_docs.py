"""Tests for tools/check_docs.py — the markdown link/anchor checker."""

from __future__ import annotations

from pathlib import Path

from tools.check_docs import check_paths, extract_links, heading_anchors


def test_extract_links_finds_inline_links_and_images() -> None:
    text = "\n".join(
        [
            "See [the guide](docs/guide.md) and ![a plot](plot.png).",
            "Two on one line: [a](x.md) [b](y.md#top).",
        ]
    )
    targets = [target for _, target in extract_links(text)]
    assert targets == ["docs/guide.md", "plot.png", "x.md", "y.md#top"]


def test_extract_links_skips_code_fences() -> None:
    text = "\n".join(
        [
            "[real](a.md)",
            "```python",
            "print('[not a link](b.md)')",
            "```",
            "[also real](c.md)",
        ]
    )
    targets = [target for _, target in extract_links(text)]
    assert targets == ["a.md", "c.md"]


def test_heading_anchors_use_github_slug_rules() -> None:
    text = "\n".join(
        [
            "# The estimator facade (`repro.api`)",
            "## Sparse ↔ dense converters",
            "## Tests and CI",
            "## Tests and CI",  # duplicate headings get -1 suffixes
        ]
    )
    anchors = heading_anchors(text)
    assert "the-estimator-facade-reproapi" in anchors
    assert "tests-and-ci" in anchors
    assert "tests-and-ci-1" in anchors


def test_check_paths_accepts_resolving_links(tmp_path: Path) -> None:
    (tmp_path / "a.md").write_text(
        "# Top\n\nSee [b](b.md) and [section](b.md#details).\n",
        encoding="utf-8",
    )
    (tmp_path / "b.md").write_text("# B\n\n## Details\n\nBack to [a](a.md#top).\n", encoding="utf-8")
    n_files, errors = check_paths([tmp_path])
    assert n_files == 2
    assert errors == []


def test_check_paths_flags_missing_file_and_missing_anchor(tmp_path: Path) -> None:
    (tmp_path / "a.md").write_text(
        "# Top\n\n[gone](missing.md)\n\n[bad anchor](b.md#nope)\n",
        encoding="utf-8",
    )
    (tmp_path / "b.md").write_text("# B\n", encoding="utf-8")
    _, errors = check_paths([tmp_path])
    assert len(errors) == 2
    assert any("missing.md" in error for error in errors)
    assert any("#nope" in error for error in errors)


def test_check_paths_ignores_external_urls(tmp_path: Path) -> None:
    (tmp_path / "a.md").write_text(
        "[site](https://example.com/page#frag) [mail](mailto:x@example.com)\n",
        encoding="utf-8",
    )
    _, errors = check_paths([tmp_path])
    assert errors == []


def test_same_file_fragment_links(tmp_path: Path) -> None:
    (tmp_path / "a.md").write_text(
        "# Intro\n\nJump to [details](#details).\n\n## Details\n\nMiss: [x](#absent)\n",
        encoding="utf-8",
    )
    _, errors = check_paths([tmp_path])
    assert len(errors) == 1
    assert "#absent" in errors[0]


def test_repo_markdown_is_link_clean() -> None:
    repo_root = Path(__file__).resolve().parent.parent
    n_files, errors = check_paths([repo_root])
    assert n_files >= 8  # README + docs/ + examples/ at minimum
    assert errors == [], "\n".join(errors)
