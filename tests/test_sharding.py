"""Tests for the sharded band builder (:mod:`repro.emd.sharding`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BagChangePointDetector
from repro.core import DetectorConfig
from repro.emd import (
    BandedDistanceMatrix,
    EngineSettings,
    PairwiseEMDEngine,
    ShardPlan,
    ShardRunner,
    band_pair_indices,
    load_shard_checkpoint,
    merge_shards,
    save_shard_checkpoint,
    sharded_banded_matrix,
)
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    SolverError,
    ValidationError,
)
from repro.signatures import Signature, SignatureBuilder

MERGE_TOL = 1e-12


def histogram_signatures(n_bags, side=4, dim=2, seed=0):
    """Histogram signatures with varying bin occupancy over one grid."""
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.arange(float(side))] * dim)
    grid = np.column_stack([axis.ravel() for axis in axes])
    signatures = []
    for i in range(n_bags):
        counts = rng.poisson(3.0, size=grid.shape[0]).astype(float)
        if counts.sum() == 0:
            counts[0] = 1.0
        signatures.append(Signature(grid[counts > 0], counts[counts > 0], label=i))
    return signatures


def irregular_signatures(n_bags, seed=0):
    """k-means-style signatures: every support distinct (per-pair LP path)."""
    rng = np.random.default_rng(seed)
    bags = [rng.normal(0.0, 1.0, size=(25, 2)) for _ in range(n_bags)]
    builder = SignatureBuilder("kmeans", n_clusters=4, random_state=seed)
    return builder.build_sequence(bags)


def band_pairs_set(plan):
    pairs = set()
    for spec in plan.shards:
        i, j = plan.pair_indices(spec.shard_id)
        for a, b in zip(i.tolist(), j.tolist()):
            assert (a, b) not in pairs, "pair owned by two shards"
            pairs.add((a, b))
    return pairs


# ---------------------------------------------------------------------- #
# Pair-range slicing API
# ---------------------------------------------------------------------- #
class TestPairRangeSlicing:
    def test_row_ranges_partition_the_band(self):
        n, bw = 23, 7
        full_i, full_j = band_pair_indices(n, bw)
        cut = 9
        head_i, head_j = band_pair_indices(n, bw, 0, cut)
        tail_i, tail_j = band_pair_indices(n, bw, cut, n)
        np.testing.assert_array_equal(np.concatenate([head_i, tail_i]), full_i)
        np.testing.assert_array_equal(np.concatenate([head_j, tail_j]), full_j)

    def test_matrix_method_matches_module_function(self):
        banded = BandedDistanceMatrix(15, 5)
        i_m, j_m = banded.pair_indices(3, 11)
        i_f, j_f = band_pair_indices(15, 5, 3, 11)
        np.testing.assert_array_equal(i_m, i_f)
        np.testing.assert_array_equal(j_m, j_f)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValidationError):
            band_pair_indices(10, 4, 5, 3)
        with pytest.raises(ValidationError):
            band_pair_indices(10, 4, 0, 11)

    def test_empty_range_yields_empty_arrays(self):
        i, j = band_pair_indices(5, 3, 2, 2)
        assert i.size == 0 and j.size == 0
        i, j = BandedDistanceMatrix(5, 3).pair_indices(5, 5)
        assert i.size == 0 and j.size == 0

    def test_set_pairs_round_trips(self):
        banded = BandedDistanceMatrix(10, 4)
        rows, cols = banded.pair_indices()
        values = np.arange(rows.size, dtype=float)
        banded.set_pairs(rows, cols, values)
        for k in range(rows.size):
            assert banded[rows[k], cols[k]] == values[k]

    def test_set_pairs_rejects_out_of_band_and_diagonal(self):
        banded = BandedDistanceMatrix(10, 4)
        with pytest.raises(ValidationError):
            banded.set_pairs(np.array([0]), np.array([5]), np.array([1.0]))
        with pytest.raises(ValidationError):
            banded.set_pairs(np.array([2]), np.array([2]), np.array([1.0]))
        with pytest.raises(ValidationError):
            banded.set_pairs(np.array([0, 1]), np.array([1]), np.array([1.0]))


# ---------------------------------------------------------------------- #
# Shard planning
# ---------------------------------------------------------------------- #
class TestShardPlan:
    @pytest.mark.parametrize(
        "n,bandwidth,n_shards",
        [(30, 6, 4), (50, 10, 7), (12, 12, 3), (100, 4, 16), (8, 3, 2)],
    )
    def test_shards_partition_the_band(self, n, bandwidth, n_shards):
        plan = ShardPlan.build(n, bandwidth, n_shards)
        full_i, full_j = band_pair_indices(n, bandwidth)
        assert band_pairs_set(plan) == set(zip(full_i.tolist(), full_j.tolist()))
        assert plan.n_pairs == full_i.size
        assert sum(spec.n_pairs for spec in plan.shards) == full_i.size

    def test_band_wider_than_shard_row_range(self):
        # bandwidth - 1 = 11 exceeds every shard's row count; halos span
        # multiple downstream shards and the partition must still be exact.
        plan = ShardPlan.build(16, 12, 5)
        assert any(
            spec.row_stop - spec.row_start < plan.bandwidth - 1 for spec in plan.shards
        )
        full_i, full_j = band_pair_indices(16, 12)
        assert band_pairs_set(plan) == set(zip(full_i.tolist(), full_j.tolist()))
        for spec in plan.shards:
            _, j = plan.pair_indices(spec.shard_id)
            if j.size:
                assert j.max() < spec.halo_stop
                assert spec.halo_stop == min(plan.n, spec.row_stop + plan.bandwidth - 1)

    def test_more_shards_than_rows_degrades_gracefully(self):
        plan = ShardPlan.build(5, 3, 50)
        assert plan.n_shards <= 5
        assert all(spec.n_pairs > 0 for spec in plan.shards)
        full_i, full_j = band_pair_indices(5, 3)
        assert band_pairs_set(plan) == set(zip(full_i.tolist(), full_j.tolist()))

    def test_single_shard_owns_everything(self):
        plan = ShardPlan.build(20, 5, 1)
        assert plan.n_shards == 1
        spec = plan.shard(0)
        assert (spec.row_start, spec.row_stop) == (0, 20)
        i, j = plan.pair_indices(0)
        full_i, full_j = band_pair_indices(20, 5)
        np.testing.assert_array_equal(i, full_i)
        np.testing.assert_array_equal(j, full_j)

    def test_balancing_is_roughly_even(self):
        plan = ShardPlan.build(200, 8, 8)
        sizes = [spec.n_pairs for spec in plan.shards]
        assert max(sizes) <= 2 * min(sizes)

    def test_plan_hash_tracks_geometry(self):
        base = ShardPlan.build(30, 6, 4)
        assert base.plan_hash() == ShardPlan.build(30, 6, 4).plan_hash()
        assert base.plan_hash() != ShardPlan.build(30, 6, 3).plan_hash()
        assert base.plan_hash() != ShardPlan.build(30, 8, 4).plan_hash()
        assert base.plan_hash() != ShardPlan.build(31, 6, 4).plan_hash()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            ShardPlan(10, 4, (0, 5, 5, 10))
        with pytest.raises(ValidationError):
            ShardPlan(10, 4, (1, 10))
        with pytest.raises(ValidationError):
            ShardPlan.build(10, 4, 2).shard(7)


# ---------------------------------------------------------------------- #
# Engine settings
# ---------------------------------------------------------------------- #
class TestEngineSettings:
    def test_from_config_carries_solver_knobs(self):
        config = DetectorConfig(
            emd_backend="sinkhorn_batch",
            sinkhorn_epsilon=0.1,
            sinkhorn_max_iter=500,
            sinkhorn_tol=1e-6,
            sinkhorn_anneal=[1.0, 0.3],
        )
        settings = EngineSettings.from_config(config)
        assert settings.backend == "sinkhorn_batch"
        assert settings.sinkhorn_anneal == (1.0, 0.3)
        engine = settings.make_engine()
        assert engine.sinkhorn_schedule == (1.0, 0.3, 0.1)
        assert engine.sinkhorn_tol == 1e-6
        engine.close()

    def test_fingerprint_changes_with_each_knob(self):
        base = EngineSettings()
        assert base.fingerprint() == EngineSettings().fingerprint()
        variants = [
            EngineSettings(ground_distance="manhattan"),
            EngineSettings(backend="linprog_batch"),
            EngineSettings(sinkhorn_epsilon=0.1),
            EngineSettings(sinkhorn_max_iter=100),
            EngineSettings(sinkhorn_tol=1e-6),
            EngineSettings(sinkhorn_anneal=(1.0,)),
        ]
        prints = {settings.fingerprint() for settings in variants}
        assert len(prints) == len(variants)
        assert base.fingerprint() not in prints

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineSettings(backend="nope")


# ---------------------------------------------------------------------- #
# Merge parity with the single-process build
# ---------------------------------------------------------------------- #
class TestMergeParity:
    @pytest.mark.parametrize("backend", ["auto", "linprog_batch", "sinkhorn_batch"])
    def test_histogram_band_matches_single_process(self, backend):
        signatures = histogram_signatures(24, seed=3)
        bandwidth = 6
        reference = PairwiseEMDEngine(backend=backend).banded_matrix(
            signatures, bandwidth
        )
        plan = ShardPlan.build(len(signatures), bandwidth, 4)
        runner = ShardRunner(plan, EngineSettings(backend=backend), mode="serial")
        merged = runner.run(signatures)
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL

    def test_irregular_band_uses_per_pair_lp_and_matches(self):
        # k-means signatures: all supports distinct, so every backend's
        # irregular per-pair LP fallback is what actually runs.
        signatures = irregular_signatures(18, seed=5)
        bandwidth = 5
        reference = PairwiseEMDEngine(backend="auto").banded_matrix(
            signatures, bandwidth
        )
        merged = sharded_banded_matrix(signatures, bandwidth, 3, mode="serial")
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL

    def test_process_mode_matches_serial(self):
        signatures = histogram_signatures(16, seed=7)
        plan = ShardPlan.build(len(signatures), 5, 3)
        serial = ShardRunner(plan, mode="serial").run(signatures)
        process = ShardRunner(plan, mode="process", n_workers=2).run(signatures)
        assert np.nanmax(np.abs(process.band - serial.band)) <= MERGE_TOL

    def test_shard_count_does_not_change_the_band(self):
        signatures = histogram_signatures(20, seed=11)
        bands = [
            sharded_banded_matrix(signatures, 6, k, mode="serial").band
            for k in (1, 2, 5)
        ]
        for other in bands[1:]:
            assert np.nanmax(np.abs(other - bands[0])) <= MERGE_TOL

    def test_merge_requires_every_shard(self):
        plan = ShardPlan.build(10, 4, 2)
        values = {0: np.zeros(plan.shard(0).n_pairs)}
        with pytest.raises(ValidationError):
            merge_shards(plan, values)
        values[1] = np.zeros(plan.shard(1).n_pairs + 1)
        with pytest.raises(ValidationError):
            merge_shards(plan, values)

    def test_signature_count_must_match_plan(self):
        plan = ShardPlan.build(10, 4, 2)
        with pytest.raises(ValidationError):
            ShardRunner(plan, mode="serial").run(histogram_signatures(9))


# ---------------------------------------------------------------------- #
# Checkpoints
# ---------------------------------------------------------------------- #
class TestCheckpoints:
    def make(self, tmp_path, n_shards=4, **settings_kwargs):
        signatures = histogram_signatures(20, seed=2)
        plan = ShardPlan.build(len(signatures), 6, n_shards)
        runner = ShardRunner(
            plan,
            EngineSettings(**settings_kwargs),
            mode="serial",
            checkpoint_dir=tmp_path / "ckpt",
        )
        return signatures, plan, runner

    def test_resume_after_simulated_crash(self, tmp_path):
        signatures, plan, runner = self.make(tmp_path)
        # The "crashed" first run finished two of four shards.
        runner.run_shard(signatures, 0)
        runner.run_shard(signatures, 2)
        resumed = ShardRunner(
            plan, EngineSettings(), mode="serial", checkpoint_dir=tmp_path / "ckpt"
        )
        merged = resumed.run(signatures)
        assert resumed.n_shards_resumed == 2
        assert resumed.n_shards_computed == plan.n_shards - 2
        reference = PairwiseEMDEngine().banded_matrix(signatures, plan.bandwidth)
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL

    def test_full_resume_computes_nothing(self, tmp_path):
        signatures, plan, runner = self.make(tmp_path)
        first = runner.run(signatures)
        again = ShardRunner(
            plan, EngineSettings(), mode="serial", checkpoint_dir=tmp_path / "ckpt"
        )
        second = again.run(signatures)
        assert again.n_shards_computed == 0
        assert again.n_shards_resumed == plan.n_shards
        assert np.nanmax(np.abs(second.band - first.band)) == 0.0

    def test_stale_fingerprint_rejected(self, tmp_path):
        signatures, plan, runner = self.make(tmp_path)
        runner.run(signatures)
        stale = ShardRunner(
            plan,
            EngineSettings(sinkhorn_epsilon=0.99),
            mode="serial",
            checkpoint_dir=tmp_path / "ckpt",
        )
        with pytest.raises(CheckpointError, match="different engine configuration"):
            stale.run(signatures)

    def test_stale_plan_rejected(self, tmp_path):
        signatures, plan, runner = self.make(tmp_path)
        runner.run(signatures)
        other_plan = ShardPlan.build(len(signatures), 6, 3)
        stale = ShardRunner(
            other_plan, EngineSettings(), mode="serial", checkpoint_dir=tmp_path / "ckpt"
        )
        with pytest.raises(CheckpointError, match="different shard plan"):
            stale.run(signatures)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        signatures, plan, runner = self.make(tmp_path)
        runner.run(signatures)
        path = tmp_path / "ckpt" / "shard_00001.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_shard_checkpoint(
                tmp_path / "ckpt", plan, 1, EngineSettings().fingerprint()
            )

    def test_missing_checkpoint_reads_as_none(self, tmp_path):
        plan = ShardPlan.build(20, 6, 4)
        assert (
            load_shard_checkpoint(tmp_path, plan, 0, EngineSettings().fingerprint())
            is None
        )

    def test_save_validates_value_length(self, tmp_path):
        plan = ShardPlan.build(20, 6, 4)
        with pytest.raises(ValidationError):
            save_shard_checkpoint(tmp_path, plan, 0, np.zeros(3), "fp")

    def test_finished_shards_survive_a_later_failure(self, tmp_path, monkeypatch):
        # Checkpoints must be written as each shard finishes, not after
        # the whole run: a failure (or kill) in shard k leaves shards
        # 0 … k−1 on disk for the next run to resume.
        signatures, plan, runner = self.make(tmp_path)
        real_compute = PairwiseEMDEngine.compute_pairs
        calls = {"n": 0}

        def failing_compute(self, pairs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise SolverError("synthetic failure in the third shard")
            return real_compute(self, pairs)

        monkeypatch.setattr(PairwiseEMDEngine, "compute_pairs", failing_compute)
        with pytest.raises(SolverError):
            runner.run(signatures)
        monkeypatch.undo()
        assert len(list((tmp_path / "ckpt").glob("shard_*.npz"))) == 2
        resumed = ShardRunner(
            plan, EngineSettings(), mode="serial", checkpoint_dir=tmp_path / "ckpt"
        )
        merged = resumed.run(signatures)
        assert resumed.n_shards_resumed == 2
        reference = PairwiseEMDEngine().banded_matrix(signatures, plan.bandwidth)
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL

    def test_checkpoint_dir_alone_engages_checkpointing(self, step_change_bags, tmp_path):
        from repro import BagChangePointDetector
        from repro.core import DetectorConfig

        config = DetectorConfig(
            tau=4,
            tau_test=4,
            signature_method="exact",
            n_bootstrap=40,
            random_state=0,
            shard_checkpoint_dir=tmp_path / "ckpt",
        )
        BagChangePointDetector(config).detect(step_change_bags)
        assert len(list((tmp_path / "ckpt").glob("shard_*.npz"))) == 1


# ---------------------------------------------------------------------- #
# Failure context
# ---------------------------------------------------------------------- #
class TestSolverErrorContext:
    def test_shard_context_attached(self, monkeypatch, tmp_path):
        signatures = histogram_signatures(12, seed=1)
        plan = ShardPlan.build(len(signatures), 4, 2)

        def boom(self, pairs):
            raise SolverError("synthetic failure", pair_indices=(0, 1))

        monkeypatch.setattr(PairwiseEMDEngine, "compute_pairs", boom)
        runner = ShardRunner(plan, mode="serial")
        with pytest.raises(SolverError) as excinfo:
            runner.run(signatures)
        assert excinfo.value.shard_id == 0
        spec = plan.shard(0)
        assert excinfo.value.shard_rows == (spec.row_start, spec.row_stop)
        assert excinfo.value.pair_indices == (0, 1)
        assert "shard 0" in str(excinfo.value)


# ---------------------------------------------------------------------- #
# Detector integration
# ---------------------------------------------------------------------- #
class TestDetectorIntegration:
    def test_sharded_detect_matches_plain(self, step_change_bags):
        kwargs = dict(
            tau=4,
            tau_test=4,
            signature_method="exact",
            n_bootstrap=40,
            random_state=0,
        )
        plain = BagChangePointDetector(DetectorConfig(**kwargs)).detect(step_change_bags)
        sharded = BagChangePointDetector(
            DetectorConfig(n_shards=3, **kwargs)
        ).detect(step_change_bags)
        for a, b in zip(plain.points, sharded.points):
            assert a.score == b.score
            assert a.alert == b.alert

    def test_detect_writes_and_resumes_checkpoints(self, step_change_bags, tmp_path):
        config = DetectorConfig(
            tau=4,
            tau_test=4,
            signature_method="exact",
            n_bootstrap=40,
            random_state=0,
            n_shards=3,
            shard_checkpoint_dir=tmp_path / "ckpt",
        )
        first = BagChangePointDetector(config).detect(step_change_bags)
        assert len(list((tmp_path / "ckpt").glob("shard_*.npz"))) == 3
        second = BagChangePointDetector(config).detect(step_change_bags)
        for a, b in zip(first.points, second.points):
            assert a.score == b.score


# ---------------------------------------------------------------------- #
# Crash-resume property (PR 7): a build killed at a random seeded point
# and resumed must merge to the identical band, for every backend.
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestCrashResumeProperty:
    @pytest.mark.parametrize("backend", ["auto", "linprog_batch", "sinkhorn_batch"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_killed_build_resumes_to_parity(self, tmp_path, backend, seed):
        from repro.emd.orchestrator import WorkerCrash
        from repro.testing import inject_worker_crash

        signatures = histogram_signatures(20, seed=13)
        bandwidth = 6
        plan = ShardPlan.build(len(signatures), bandwidth, 4)
        reference = PairwiseEMDEngine(backend=backend).banded_matrix(
            signatures, bandwidth
        )
        # Kill the build at a seeded-random pair; partially finished
        # shards leave their checkpoints behind.
        kill_at = int(np.random.default_rng(seed).integers(plan.n_pairs))
        runner = ShardRunner(
            plan,
            EngineSettings(backend=backend),
            mode="serial",
            checkpoint_dir=tmp_path / "ckpt",
        )
        with inject_worker_crash(at_pair=kill_at, times=1):
            with pytest.raises(WorkerCrash):
                runner.run(signatures)
        n_saved = len(list((tmp_path / "ckpt").glob("shard_*.npz")))
        assert n_saved < plan.n_shards
        # The resumed build picks up the survivors and matches exactly.
        resumed = ShardRunner(
            plan,
            EngineSettings(backend=backend),
            mode="serial",
            checkpoint_dir=tmp_path / "ckpt",
        )
        merged = resumed.run(signatures)
        assert resumed.n_shards_resumed == n_saved
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL

    @pytest.mark.parametrize("seed", [3, 4])
    def test_orchestrator_retries_instead_of_dying(self, tmp_path, seed):
        # Same fault, orchestrated build: no manual resume needed — the
        # crash is absorbed by the retry queue within one run.
        from repro.emd.orchestrator import ShardOrchestrator
        from repro.testing import FakeClock, inject_worker_crash

        signatures = histogram_signatures(20, seed=13)
        plan = ShardPlan.build(len(signatures), 6, 4)
        reference = PairwiseEMDEngine().banded_matrix(signatures, 6)
        kill_at = int(np.random.default_rng(seed).integers(plan.n_pairs))
        clock = FakeClock()
        orchestrator = ShardOrchestrator(
            plan,
            EngineSettings(),
            mode="serial",
            n_workers=4,
            checkpoint_dir=tmp_path / "ckpt",
            clock=clock,
            sleep=clock.sleep,
        )
        with inject_worker_crash(at_pair=kill_at, times=1):
            merged = orchestrator.run(signatures)
        assert orchestrator.n_retries == 1
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL


# ---------------------------------------------------------------------- #
# Shared-memory hygiene (PR 7 bugfix): no segment may outlive the run,
# not even when construction fails halfway or a worker dies mid-shard.
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestSharedMemoryCleanup:
    @staticmethod
    def shm_segments():
        import os

        try:
            return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
        except FileNotFoundError:  # non-Linux: nothing observable
            return set()

    def test_partial_store_construction_leaks_nothing(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.emd.sharding import _SharedSignatureStore

        before = self.shm_segments()
        real = shared_memory.SharedMemory
        calls = {"n": 0}

        def failing(*args, **kwargs):
            if kwargs.get("create") or (args and args[0] is None):
                calls["n"] += 1
                if calls["n"] == 3:
                    raise OSError("synthetic /dev/shm exhaustion on block 3")
            return real(*args, **kwargs)

        monkeypatch.setattr(shared_memory, "SharedMemory", failing)
        with pytest.raises(OSError, match="block 3"):
            _SharedSignatureStore(histogram_signatures(8))
        monkeypatch.undo()
        assert self.shm_segments() == before

    def test_worker_death_mid_shard_leaks_nothing(self, tmp_path):
        from repro.testing import inject_worker_crash

        signatures = histogram_signatures(16, seed=7)
        plan = ShardPlan.build(len(signatures), 5, 3)
        reference = PairwiseEMDEngine().banded_matrix(signatures, 5)
        before = self.shm_segments()
        # A worker process hard-exits mid-shard; the broken pool makes
        # the runner fall back to serial execution, and the parent-side
        # store must still unlink every segment on the way out.
        with inject_worker_crash(
            at_pair=0, hard=True, sentinel=tmp_path / "die"
        ):
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                merged = ShardRunner(plan, mode="process", n_workers=2).run(signatures)
        assert self.shm_segments() == before
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL

    def test_orchestrator_worker_death_leaks_nothing(self, tmp_path):
        from repro.emd.orchestrator import ShardOrchestrator
        from repro.testing import inject_worker_crash

        signatures = histogram_signatures(16, seed=7)
        plan = ShardPlan.build(len(signatures), 5, 3)
        reference = PairwiseEMDEngine().banded_matrix(signatures, 5)
        before = self.shm_segments()
        orchestrator = ShardOrchestrator(
            plan, EngineSettings(), mode="process", n_workers=2
        )
        with inject_worker_crash(at_pair=0, hard=True, sentinel=tmp_path / "die"):
            merged = orchestrator.run(signatures)
        assert orchestrator.n_retries >= 1
        assert self.shm_segments() == before
        assert np.nanmax(np.abs(merged.band - reference.band)) <= MERGE_TOL


# ---------------------------------------------------------------------- #
# Checkpoint diagnostics (PR 7 bugfix): stale/corrupt rejections name
# the expected AND the found value, so the operator can tell a renamed
# directory from a genuinely different configuration.
# ---------------------------------------------------------------------- #
class TestCheckpointDiagnostics:
    def write_one(self, tmp_path, plan, fingerprint="fp"):
        values = np.linspace(0.0, 1.0, plan.shard(0).n_pairs)
        save_shard_checkpoint(tmp_path, plan, 0, values, fingerprint)
        return values

    def test_plan_mismatch_reports_both_hashes(self, tmp_path):
        plan = ShardPlan.build(20, 6, 4)
        other = ShardPlan.build(20, 6, 5)
        self.write_one(tmp_path, plan)
        with pytest.raises(CheckpointError) as excinfo:
            load_shard_checkpoint(tmp_path, other, 0, "fp")
        message = str(excinfo.value)
        assert f"expected plan hash {other.plan_hash()}" in message
        assert f"found {plan.plan_hash()}" in message

    def test_fingerprint_mismatch_reports_both(self, tmp_path):
        plan = ShardPlan.build(20, 6, 4)
        self.write_one(tmp_path, plan, fingerprint="written-under-this")
        with pytest.raises(CheckpointError) as excinfo:
            load_shard_checkpoint(tmp_path, plan, 0, "expected-this")
        message = str(excinfo.value)
        assert "expected fingerprint expected-this" in message
        assert "found written-under-this" in message

    def test_tampered_payload_reports_both_checksums(self, tmp_path):
        from repro.emd.sharding import _values_checksum, checkpoint_path
        from repro.testing import tamper_checkpoint_values

        plan = ShardPlan.build(20, 6, 4)
        values = self.write_one(tmp_path, plan)
        tamper_checkpoint_values(checkpoint_path(tmp_path, 0), delta=0.25)
        with pytest.raises(CheckpointError) as excinfo:
            load_shard_checkpoint(tmp_path, plan, 0, "fp")
        message = str(excinfo.value)
        assert f"expected payload checksum {_values_checksum(values)}" in message
        tampered = values.copy()
        tampered[0] += 0.25
        assert f"found {_values_checksum(tampered)}" in message
