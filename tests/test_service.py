"""Tests for the crash-safe streaming service (:mod:`repro.service`).

Covers the three robustness layers of the supervisor stack:

* snapshot/restore — a stream killed at an arbitrary push and restored
  from its snapshot reproduces the uninterrupted run's full score
  history to 1e-12, on every solver backend; corrupt, tampered and
  fingerprint-mismatched snapshots are rejected with
  :class:`~repro.exceptions.CheckpointError`;
* per-stream fault isolation — a solver failure in one stream is
  handled by the strict/degraded/quarantine policy and leaves sibling
  streams bit-identical to unfaulted runs;
* backpressure — bounded ingest queues with block/shed/error policies
  and truthful supervisor metrics.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import DetectorConfig, OnlineBagDetector
from repro.emd import EMD_SOLVERS
from repro.exceptions import (
    BackpressureError,
    CheckpointError,
    SolverError,
    ValidationError,
)
from repro.service import (
    StreamSupervisor,
    SupervisorPolicy,
    config_fingerprint,
    load_quarantine_manifest,
    load_stream_snapshot,
    save_stream_snapshot,
    snapshot_path,
)
from repro.testing.faults import (
    bitflip_checkpoint,
    inject_transient_solver_error,
    tamper_snapshot_payload,
    truncate_checkpoint,
)

TOL = 1e-12


def make_bags(n, shift=3.0, seed=0, size=15):
    r = np.random.default_rng(seed)
    return [
        r.normal(size=(size, 2)) + (shift if i >= n // 2 else 0.0) for i in range(n)
    ]


def service_config(**overrides):
    defaults = dict(
        tau=3,
        tau_test=3,
        signature_method="kmeans",
        n_clusters=4,
        n_bootstrap=20,
        random_state=11,
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


def backend_config(backend, **overrides):
    """A config exercising ``backend`` on common-support signatures."""
    defaults = dict(
        tau=3,
        tau_test=3,
        signature_method="histogram",
        bins=3,
        histogram_range=[(-6.0, 10.0), (-6.0, 10.0)],
        emd_backend=backend,
        sinkhorn_tol=1e-6,
        n_bootstrap=20,
        random_state=7,
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


def _same(a, b, tol=TOL):
    if np.isnan(a) and np.isnan(b):
        return True
    return abs(a - b) <= tol


def assert_histories_match(points_a, points_b, tol=TOL):
    """Full score-history equality: times, scores, bounds, gammas, alerts."""
    assert [p.time for p in points_a] == [p.time for p in points_b]
    for p, q in zip(points_a, points_b):
        assert _same(p.score, q.score, tol), (p.time, p.score, q.score)
        assert _same(p.interval.lower, q.interval.lower, tol)
        assert _same(p.interval.upper, q.interval.upper, tol)
        assert _same(p.gamma, q.gamma, tol)
        assert p.alert == q.alert


# ---------------------------------------------------------------------- #
# Detector state_dict / from_state_dict
# ---------------------------------------------------------------------- #
class TestStateDict:
    def test_roundtrip_continues_bit_identically(self):
        bags = make_bags(24, seed=1)
        cfg = service_config()
        full = OnlineBagDetector(cfg)
        for bag in bags:
            full.push(bag)
        partial = OnlineBagDetector(service_config())
        for bag in bags[:13]:
            partial.push(bag)
        restored = OnlineBagDetector.from_state_dict(
            partial.state_dict(), service_config()
        )
        for bag in bags[13:]:
            restored.push(bag)
        assert_histories_match(full.history.points, restored.history.points)

    def test_state_dict_readable_after_close(self):
        detector = OnlineBagDetector(service_config())
        for bag in make_bags(10, seed=2):
            detector.push(bag)
        detector.close()
        state = detector.state_dict()
        assert state["n_seen"] == 10

    def test_rejects_wrong_format_version(self):
        detector = OnlineBagDetector(service_config())
        state = detector.state_dict()
        state["format_version"] = 99
        with pytest.raises(CheckpointError, match="format version"):
            OnlineBagDetector.from_state_dict(state, service_config())

    def test_rejects_mismatched_window_span(self):
        detector = OnlineBagDetector(service_config())
        for bag in make_bags(8, seed=3):
            detector.push(bag)
        state = detector.state_dict()
        with pytest.raises(CheckpointError, match="tau"):
            OnlineBagDetector.from_state_dict(
                state, service_config(tau=4, tau_test=4)
            )

    def test_rejects_mismatched_rng_family(self):
        detector = OnlineBagDetector(service_config())
        state = detector.state_dict()
        state["rng_state"] = dict(state["rng_state"], bit_generator="MT19937")
        with pytest.raises(CheckpointError, match="bit"):
            OnlineBagDetector.from_state_dict(state, service_config())


# ---------------------------------------------------------------------- #
# Snapshot files: kill / restore / replay parity, per solver backend
# ---------------------------------------------------------------------- #
class TestSnapshotRestoreParity:
    @pytest.mark.parametrize("backend", EMD_SOLVERS)
    def test_kill_restore_replay_matches_uninterrupted(self, tmp_path, backend):
        cfg = backend_config(backend)
        fingerprint = config_fingerprint(cfg)
        bags = make_bags(22, seed=4)
        full = OnlineBagDetector(cfg)
        for bag in bags:
            full.push(bag)
        # Seeded random kill points — the property must hold wherever the
        # stream dies, including mid-warmup and deep into emission.
        kill_rng = np.random.default_rng(abs(hash(backend)) % (2**32))
        kills = kill_rng.integers(2, len(bags) - 1, size=2)
        for kill in kills:
            victim = OnlineBagDetector(backend_config(backend))
            for bag in bags[:kill]:
                victim.push(bag)
            save_stream_snapshot(
                tmp_path, f"victim-{backend}-{kill}", victim.state_dict(), fingerprint
            )
            state = load_stream_snapshot(
                tmp_path, f"victim-{backend}-{kill}", fingerprint
            )
            restored = OnlineBagDetector.from_state_dict(
                state, backend_config(backend)
            )
            for bag in bags[kill:]:
                restored.push(bag)
            assert_histories_match(full.history.points, restored.history.points)

    def test_missing_snapshot_returns_none(self, tmp_path):
        cfg = service_config()
        assert load_stream_snapshot(tmp_path, "ghost", config_fingerprint(cfg)) is None

    def test_invalid_stream_name_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="stream names"):
            snapshot_path(tmp_path, "../escape")


def _snapshot_for_corruption(tmp_path, name="victim"):
    cfg = service_config()
    detector = OnlineBagDetector(cfg)
    for bag in make_bags(14, seed=5):
        detector.push(bag)
    fingerprint = config_fingerprint(cfg)
    path = save_stream_snapshot(tmp_path, name, detector.state_dict(), fingerprint)
    return path, fingerprint


class TestSnapshotRejection:
    def test_truncated_snapshot_rejected(self, tmp_path):
        path, fingerprint = _snapshot_for_corruption(tmp_path)
        truncate_checkpoint(path)
        with pytest.raises(CheckpointError, match="unreadable"):
            load_stream_snapshot(tmp_path, "victim", fingerprint)

    def test_bitflipped_snapshot_rejected(self, tmp_path):
        path, fingerprint = _snapshot_for_corruption(tmp_path)
        bitflip_checkpoint(path, seed=3, n_bits=8)
        with pytest.raises(CheckpointError):
            load_stream_snapshot(tmp_path, "victim", fingerprint)

    def test_tampered_snapshot_rejected_by_checksum(self, tmp_path):
        path, fingerprint = _snapshot_for_corruption(tmp_path)
        tamper_snapshot_payload(path, key="window_matrix", delta=0.5)
        with pytest.raises(CheckpointError, match="checksum"):
            load_stream_snapshot(tmp_path, "victim", fingerprint)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        _snapshot_for_corruption(tmp_path)
        other = config_fingerprint(service_config(n_bootstrap=40))
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_stream_snapshot(tmp_path, "victim", other)

    def test_fingerprint_ignores_runtime_knobs(self):
        base = service_config()
        assert config_fingerprint(base) == config_fingerprint(
            service_config(history_limit=64, parallel_backend="thread", n_workers=2)
        )
        assert config_fingerprint(base) != config_fingerprint(
            service_config(n_bootstrap=40)
        )


# ---------------------------------------------------------------------- #
# Supervisor: multiplexing, snapshots, metrics
# ---------------------------------------------------------------------- #
class TestStreamSupervisor:
    def test_streams_match_independent_detectors(self):
        cfg = service_config()
        bags_a = make_bags(16, seed=6)
        bags_b = make_bags(16, shift=1.5, seed=7)
        with StreamSupervisor(cfg) as supervisor:
            supervisor.add_stream("a")
            supervisor.add_stream("b")
            for bag_a, bag_b in zip(bags_a, bags_b):
                supervisor.submit("a", bag_a)
                supervisor.submit("b", bag_b)
            emitted = supervisor.drain()
            for name, bags in (("a", bags_a), ("b", bags_b)):
                independent = OnlineBagDetector(service_config())
                for bag in bags:
                    independent.push(bag)
                assert_histories_match(
                    independent.history.points,
                    supervisor.detector(name).history.points,
                )
        assert {name for name, _ in emitted} == {"a", "b"}

    def test_supervised_streams_get_bounded_history(self):
        with StreamSupervisor(service_config()) as supervisor:
            detector = supervisor.add_stream("a")
            assert detector.config.history_limit is not None

    def test_restore_on_startup_continues_streams(self, tmp_path):
        cfg = service_config()
        bags = make_bags(20, seed=8)
        with StreamSupervisor(cfg, snapshot_dir=tmp_path) as supervisor:
            supervisor.add_stream("a")
            for bag in bags[:12]:
                supervisor.submit("a", bag)
            supervisor.drain()
        # close() snapshotted the stream; a new supervisor resumes it.
        with StreamSupervisor(cfg, snapshot_dir=tmp_path) as supervisor:
            detector = supervisor.add_stream("a")
            assert detector.n_seen == 12
            assert supervisor.metrics["n_restored"] == 1
            for bag in bags[12:]:
                supervisor.submit("a", bag)
            supervisor.drain()
            independent = OnlineBagDetector(service_config())
            for bag in bags:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector("a").history.points,
            )

    def test_snapshot_cadence(self, tmp_path):
        policy = SupervisorPolicy(snapshot_every=4)
        with StreamSupervisor(
            service_config(), policy, snapshot_dir=tmp_path
        ) as supervisor:
            supervisor.add_stream("a")
            for bag in make_bags(9, seed=9):
                supervisor.submit("a", bag)
            supervisor.drain()
            # 9 pushes at cadence 4 -> snapshots after push 4 and 8.
            assert supervisor.metrics["n_snapshots_written"] == 2
            assert snapshot_path(tmp_path, "a").exists()

    def test_duplicate_and_unknown_streams_rejected(self):
        with StreamSupervisor(service_config()) as supervisor:
            supervisor.add_stream("a")
            with pytest.raises(ValidationError, match="already registered"):
                supervisor.add_stream("a")
            with pytest.raises(ValidationError, match="unknown stream"):
                supervisor.submit("nope", np.zeros((3, 2)))

    def test_close_is_idempotent_and_closes_detectors(self):
        supervisor = StreamSupervisor(service_config())
        detector = supervisor.add_stream("a")
        supervisor.close()
        supervisor.close()
        assert detector.closed


# ---------------------------------------------------------------------- #
# Backpressure
# ---------------------------------------------------------------------- #
class TestBackpressure:
    def test_shed_policy_drops_and_counts(self):
        policy = SupervisorPolicy(backpressure="shed", queue_capacity=2)
        with StreamSupervisor(service_config(), policy) as supervisor:
            supervisor.add_stream("a")
            accepted = [
                supervisor.submit("a", bag) for bag in make_bags(5, seed=10)
            ]
            assert accepted == [True, True, False, False, False]
            assert supervisor.metrics["n_shed"] == 3
            assert supervisor.metrics["queue_depths"]["a"] == 2

    def test_error_policy_raises_with_context(self):
        policy = SupervisorPolicy(backpressure="error", queue_capacity=1)
        with StreamSupervisor(service_config(), policy) as supervisor:
            supervisor.add_stream("a")
            supervisor.submit("a", np.zeros((5, 2)))
            with pytest.raises(BackpressureError) as excinfo:
                supervisor.submit("a", np.zeros((5, 2)))
            assert excinfo.value.stream == "a"
            assert excinfo.value.depth == 1

    def test_block_policy_drains_inline(self):
        policy = SupervisorPolicy(backpressure="block", queue_capacity=2)
        with StreamSupervisor(service_config(), policy) as supervisor:
            supervisor.add_stream("a")
            for bag in make_bags(6, seed=11):
                assert supervisor.submit("a", bag)
            # 6 accepted into a 2-slot queue: 4 were processed inline.
            assert supervisor.detector("a").n_seen == 4
            assert supervisor.metrics["n_shed"] == 0


# ---------------------------------------------------------------------- #
# Per-stream fault isolation
# ---------------------------------------------------------------------- #
@pytest.mark.faults
class TestFaultIsolation:
    def test_strict_policy_requeues_and_retries(self):
        cfg = service_config()
        bags = make_bags(16, seed=12)
        with StreamSupervisor(cfg) as supervisor:
            supervisor.add_stream("a")
            for bag in bags[:10]:
                supervisor.submit("a", bag)
            supervisor.drain()
            n_before = supervisor.detector("a").n_seen
            supervisor.submit("a", bags[10])
            with inject_transient_solver_error(times=1):
                with pytest.raises(SolverError):
                    supervisor.drain()
            # The failed bag went back to the front of the queue and the
            # detector was left untouched.
            assert supervisor.detector("a").n_seen == n_before
            assert supervisor.metrics["queue_depths"]["a"] == 1
            for bag in bags[11:]:
                supervisor.submit("a", bag)
            supervisor.drain()
            independent = OnlineBagDetector(service_config())
            for bag in bags:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector("a").history.points,
            )

    def test_degraded_policy_emits_nan_and_heals(self):
        cfg = service_config()
        bags = make_bags(18, seed=13)
        policy = SupervisorPolicy(on_stream_error="degraded")
        with StreamSupervisor(cfg, policy) as supervisor:
            supervisor.add_stream("a")
            for position, bag in enumerate(bags):
                supervisor.submit("a", bag)
                if position == 8:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", RuntimeWarning)
                        with inject_transient_solver_error(times=1):
                            supervisor.drain()
                else:
                    supervisor.drain()
            assert supervisor.metrics["n_degraded_points"] == 1
            points = supervisor.detector("a").history.points
            nan_times = [p.time for p in points if np.isnan(p.score)]
            # The masked entries are bag 8's distances to its window
            # predecessors (bags 3..7), so exactly the windows containing
            # bag 8 together with at least one of them are NaN-scored.
            assert nan_times == [
                p.time
                for p in points
                if p.time - cfg.tau <= 7 and 8 <= p.time + cfg.tau_test - 1
            ]
            assert not any(p.alert for p in points if np.isnan(p.score))
            # Once bag 8 left the window the stream healed: the tail is
            # bit-identical to an unfaulted run.
            independent = OnlineBagDetector(service_config())
            for bag in bags:
                independent.push(bag)
            reference = {p.time: p for p in independent.history.points}
            # Scores and intervals heal as soon as no masked pair is in
            # the window (t > 10)...
            healed = [p for p in points if p.time > 10]
            assert healed, "expected post-fault points"
            for q in healed:
                p = reference[q.time]
                assert _same(p.score, q.score)
                assert _same(p.interval.lower, q.interval.lower)
                assert _same(p.interval.upper, q.interval.upper)
            # ...while gamma additionally needs its comparison interval
            # (tau_test steps back) to be post-fault too.
            fully_healed = [p for p in points if p.time > 10 + cfg.tau_test]
            assert fully_healed, "expected fully healed points"
            assert_histories_match(
                [reference[p.time] for p in fully_healed], fully_healed
            )

    def test_fault_leaves_sibling_streams_bit_identical(self):
        cfg = service_config()
        bags_a = make_bags(16, seed=14)
        bags_b = make_bags(16, shift=2.0, seed=15)
        policy = SupervisorPolicy(on_stream_error="degraded")
        with StreamSupervisor(cfg, policy) as supervisor:
            supervisor.add_stream("a")
            supervisor.add_stream("b")
            for position, (bag_a, bag_b) in enumerate(zip(bags_a, bags_b)):
                supervisor.submit("a", bag_a)
                supervisor.submit("b", bag_b)
                if position == 7:
                    # Drain the healthy stream first, then fault only the
                    # target stream's drain.
                    supervisor.drain("b")
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", RuntimeWarning)
                        with inject_transient_solver_error(times=1):
                            supervisor.drain("a")
                else:
                    supervisor.drain()
            independent = OnlineBagDetector(service_config())
            for bag in bags_b:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector("b").history.points,
            )
            assert any(
                np.isnan(p.score) for p in supervisor.detector("a").history.points
            )

    def test_quarantine_policy_parks_and_restores(self, tmp_path):
        cfg = service_config()
        bags = make_bags(18, seed=16)
        policy = SupervisorPolicy(on_stream_error="quarantine")
        with StreamSupervisor(cfg, policy, snapshot_dir=tmp_path) as supervisor:
            supervisor.add_stream("a")
            for bag in bags[:9]:
                supervisor.submit("a", bag)
            supervisor.drain()
            for bag in bags[9:12]:
                supervisor.submit("a", bag)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with inject_transient_solver_error(times=1):
                    supervisor.drain()
            assert supervisor.status("a") == "quarantined"
            metrics = supervisor.metrics
            assert metrics["n_quarantined"] == 1
            assert metrics["n_shed"] == 2  # the two bags queued behind the failure
            manifest = load_quarantine_manifest(tmp_path)
            assert set(manifest) == {"a"}
            assert manifest["a"]["n_seen"] == 9
            assert "SolverError" in manifest["a"]["reason"]
            # Parked streams shed their submissions.
            assert supervisor.submit("a", bags[12]) is False
            # Un-park: the stream resumes from its pre-failure snapshot
            # and replaying the tail matches an unfaulted run.
            detector = supervisor.restore_stream("a")
            assert detector.n_seen == 9
            assert load_quarantine_manifest(tmp_path) == {}
            for bag in bags[9:]:
                supervisor.submit("a", bag)
            supervisor.drain()
            independent = OnlineBagDetector(service_config())
            for bag in bags:
                independent.push(bag)
            assert_histories_match(
                independent.history.points,
                supervisor.detector("a").history.points,
            )

    def test_quarantine_manifest_parks_stream_across_restarts(self, tmp_path):
        cfg = service_config()
        bags = make_bags(14, seed=17)
        policy = SupervisorPolicy(on_stream_error="quarantine")
        with StreamSupervisor(cfg, policy, snapshot_dir=tmp_path) as supervisor:
            supervisor.add_stream("a")
            for bag in bags[:8]:
                supervisor.submit("a", bag)
            supervisor.drain()
            supervisor.submit("a", bags[8])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with inject_transient_solver_error(times=1):
                    supervisor.drain()
        with StreamSupervisor(cfg, policy, snapshot_dir=tmp_path) as supervisor:
            supervisor.add_stream("a")
            assert supervisor.status("a") == "quarantined"
            assert supervisor.submit("a", bags[8]) is False
            detector = supervisor.restore_stream("a")
            assert supervisor.status("a") == "active"
            assert detector.n_seen == 8
