"""Tests for the high-level EMD API, ground distances, 1-D fast path and matrices."""

import numpy as np
import pytest

from repro.emd import (
    EMDCache,
    cross_distance_matrix,
    cross_emd_matrix,
    emd,
    emd_1d_histograms,
    emd_matrix,
    emd_with_flow,
    resolve_ground_distance,
    wasserstein_1d,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.signatures import Signature


def sig(points, weights, label=None):
    return Signature(np.asarray(points, float), np.asarray(weights, float), label=label)


class TestGroundDistances:
    def test_euclidean_matches_manual(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0]])
        dist = cross_distance_matrix(a, b, "euclidean")
        assert dist[0, 0] == pytest.approx(3.0)
        assert dist[1, 0] == pytest.approx(np.sqrt(10.0))

    def test_sqeuclidean(self):
        a = np.array([[0.0]])
        b = np.array([[3.0]])
        assert cross_distance_matrix(a, b, "sqeuclidean")[0, 0] == pytest.approx(9.0)

    def test_manhattan(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 2.0]])
        assert cross_distance_matrix(a, b, "cityblock")[0, 0] == pytest.approx(3.0)

    def test_chebyshev(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 2.0]])
        assert cross_distance_matrix(a, b, "chebyshev")[0, 0] == pytest.approx(2.0)

    def test_callable_metric(self):
        metric = lambda a, b: np.ones((a.shape[0], b.shape[0]))
        dist = cross_distance_matrix(np.zeros((2, 1)), np.zeros((3, 1)), metric)
        assert dist.shape == (2, 3)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_ground_distance("hyperbolic")

    def test_callable_with_wrong_shape_rejected(self):
        bad = lambda a, b: np.ones((1, 1))
        with pytest.raises(ConfigurationError):
            cross_distance_matrix(np.zeros((2, 1)), np.zeros((3, 1)), bad)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            cross_distance_matrix(np.zeros((2, 1)), np.zeros((3, 2)))


class TestWasserstein1D:
    def test_point_masses(self):
        assert wasserstein_1d([0.0], [1.0], [3.0], [1.0]) == pytest.approx(3.0)

    def test_identical_distributions(self):
        x = np.array([0.0, 1.0, 2.0])
        w = np.array([1.0, 2.0, 1.0])
        assert wasserstein_1d(x, w, x, w) == pytest.approx(0.0)

    def test_translation_equivariance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=20)
        w = rng.uniform(0.5, 2.0, size=20)
        shift = 4.2
        assert wasserstein_1d(x, w, x + shift, w) == pytest.approx(shift, rel=1e-9)

    def test_weights_normalised(self):
        # Scaling all weights by a constant must not change the distance.
        d1 = wasserstein_1d([0.0, 1.0], [1.0, 1.0], [2.0], [1.0])
        d2 = wasserstein_1d([0.0, 1.0], [10.0, 10.0], [2.0], [5.0])
        assert d1 == pytest.approx(d2)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        xa, xb = rng.normal(size=10), rng.normal(size=15)
        wa, wb = np.ones(10), np.ones(15)
        assert wasserstein_1d(xa, wa, xb, wb) == pytest.approx(
            wasserstein_1d(xb, wb, xa, wa)
        )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_1d([0.0, 1.0], [1.0], [2.0], [1.0])


class TestEmd1dHistograms:
    def test_identical_histograms(self):
        counts = np.array([1.0, 2.0, 3.0])
        assert emd_1d_histograms(counts, counts) == pytest.approx(0.0)

    def test_one_bin_shift(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0])
        assert emd_1d_histograms(a, b, bin_width=2.0) == pytest.approx(2.0)

    def test_mismatched_bins_rejected(self):
        with pytest.raises(ValueError):
            emd_1d_histograms(np.ones(3), np.ones(4))

    def test_nonpositive_bin_width_rejected(self):
        with pytest.raises(ValueError):
            emd_1d_histograms(np.ones(3), np.ones(3), bin_width=0.0)


class TestEmd:
    def test_identical_signatures_zero(self, small_signature):
        assert emd(small_signature, small_signature) == pytest.approx(0.0, abs=1e-9)

    def test_point_mass_distance(self):
        a = sig([[0.0, 0.0]], [1.0])
        b = sig([[3.0, 4.0]], [1.0])
        assert emd(a, b) == pytest.approx(5.0)

    def test_translation_distance(self, small_signature, shifted_signature):
        # Both signatures share the same internal shape, translated by (5, 5).
        assert emd(small_signature, shifted_signature) == pytest.approx(
            np.sqrt(50.0), rel=1e-6
        )

    def test_symmetry(self, rng):
        a = sig(rng.normal(size=(4, 2)), rng.uniform(1, 3, 4))
        b = sig(rng.normal(size=(6, 2)), rng.uniform(1, 3, 6))
        assert emd(a, b) == pytest.approx(emd(b, a), rel=1e-8)

    def test_triangle_inequality_on_normalised_signatures(self, rng):
        sigs = [
            sig(rng.normal(size=(4, 2)), np.ones(4)).normalized() for _ in range(3)
        ]
        d01 = emd(sigs[0], sigs[1])
        d12 = emd(sigs[1], sigs[2])
        d02 = emd(sigs[0], sigs[2])
        assert d02 <= d01 + d12 + 1e-8

    def test_backends_agree(self, rng):
        a = sig(rng.normal(size=(5, 3)), rng.uniform(1, 4, 5))
        b = sig(rng.normal(size=(4, 3)), rng.uniform(1, 4, 4))
        assert emd(a, b, backend="linprog") == pytest.approx(
            emd(a, b, backend="simplex"), rel=1e-5
        )

    def test_1d_fast_path_matches_lp(self, rng):
        xa = rng.normal(size=(6, 1))
        xb = rng.normal(size=(6, 1))
        a = sig(xa, np.ones(6))
        b = sig(xb, np.ones(6))
        assert emd(a, b, backend="auto") == pytest.approx(
            emd(a, b, backend="linprog"), rel=1e-8
        )

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            emd(sig([[0.0]], [1.0]), sig([[0.0, 0.0]], [1.0]))

    def test_unknown_backend_rejected(self, small_signature):
        with pytest.raises(ConfigurationError):
            emd(small_signature, small_signature, backend="quantum")

    def test_partial_matching_uses_smaller_mass(self):
        # One unit of mass at 0 vs ten units spread over {0, 100}: the
        # cheapest unit is matched, so the distance is 0.
        a = sig([[0.0]], [1.0])
        b = sig([[0.0], [100.0]], [5.0, 5.0])
        assert emd(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_emd_with_flow_returns_flow_matrix(self, rng):
        a = sig(rng.normal(size=(3, 2)), np.ones(3))
        b = sig(rng.normal(size=(4, 2)), np.ones(4))
        result = emd_with_flow(a, b, backend="linprog")
        assert result.flow.shape == (3, 4)
        assert result.total_flow == pytest.approx(3.0)
        assert result.distance == pytest.approx(result.cost / result.total_flow)

    def test_scale_invariance_of_weights(self, rng):
        # EMD (Eq. 12) is invariant to multiplying both weight vectors by
        # the same constant.
        a = sig(rng.normal(size=(4, 2)), rng.uniform(1, 2, 4))
        b = sig(rng.normal(size=(5, 2)), rng.uniform(1, 2, 5))
        assert emd(a.scaled(3.0), b.scaled(3.0)) == pytest.approx(emd(a, b), rel=1e-7)


class TestEmdMatrices:
    def test_matrix_symmetric_zero_diagonal(self, rng):
        sigs = [sig(rng.normal(size=(4, 2)), np.ones(4), label=i) for i in range(4)]
        matrix = emd_matrix(sigs)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_cross_matrix_shape(self, rng):
        sa = [sig(rng.normal(size=(3, 2)), np.ones(3)) for _ in range(2)]
        sb = [sig(rng.normal(size=(3, 2)), np.ones(3)) for _ in range(3)]
        assert cross_emd_matrix(sa, sb).shape == (2, 3)

    def test_cache_hits_on_repeated_queries(self, rng):
        sigs = [sig(rng.normal(size=(4, 2)), np.ones(4), label=i) for i in range(3)]
        cache = EMDCache()
        cache.matrix(sigs)
        misses_after_first = cache.misses
        cache.matrix(sigs)
        assert cache.misses == misses_after_first
        assert cache.hits > 0

    def test_cache_symmetric_key(self, rng):
        a = sig(rng.normal(size=(3, 2)), np.ones(3), label="a")
        b = sig(rng.normal(size=(3, 2)), np.ones(3), label="b")
        cache = EMDCache()
        d1 = cache.distance(a, b)
        d2 = cache.distance(b, a)
        assert d1 == d2
        assert len(cache) == 1

    def test_cache_clear(self, rng):
        a = sig(rng.normal(size=(3, 2)), np.ones(3), label="a")
        b = sig(rng.normal(size=(3, 2)), np.ones(3), label="b")
        cache = EMDCache()
        cache.distance(a, b)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_cache_matches_direct_emd(self, rng):
        a = sig(rng.normal(size=(4, 2)), np.ones(4), label="a")
        b = sig(rng.normal(size=(4, 2)), np.ones(4), label="b")
        assert EMDCache().distance(a, b) == pytest.approx(emd(a, b))
