"""Tests for the bag-stream preprocessing utilities."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.preprocessing import BagPCA, BagRobustScaler, BagStandardScaler, InnovationFilter


class TestBagStandardScaler:
    def test_transformed_stream_has_zero_mean_unit_std(self, rng):
        bags = [rng.normal([5.0, -3.0], [2.0, 0.5], size=(50, 2)) for _ in range(6)]
        scaled = BagStandardScaler().fit_transform(bags)
        stacked = np.vstack(scaled)
        assert np.allclose(stacked.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(stacked.std(axis=0), 1.0, atol=1e-9)

    def test_transform_preserves_bag_sizes(self, rng):
        bags = [rng.normal(size=(n, 3)) for n in (4, 9, 6)]
        scaled = BagStandardScaler().fit_transform(bags)
        assert [len(b) for b in scaled] == [4, 9, 6]

    def test_inverse_transform_round_trip(self, rng):
        bags = [rng.normal(3.0, 2.0, size=(20, 2)) for _ in range(3)]
        scaler = BagStandardScaler().fit(bags)
        recovered = scaler.inverse_transform(scaler.transform(bags))
        assert np.allclose(np.vstack(recovered), np.vstack(bags))

    def test_constant_dimension_does_not_divide_by_zero(self):
        bags = [np.column_stack([np.arange(5.0), np.full(5, 2.0)])]
        scaled = BagStandardScaler().fit_transform(bags)
        assert np.all(np.isfinite(scaled[0]))

    def test_without_mean_or_std(self, rng):
        bags = [rng.normal(5.0, 2.0, size=(30, 1)) for _ in range(2)]
        only_scale = BagStandardScaler(with_mean=False).fit_transform(bags)
        assert np.vstack(only_scale).mean() > 1.0  # mean not removed

    def test_requires_fit_before_transform(self, rng):
        with pytest.raises(NotFittedError):
            BagStandardScaler().transform([rng.normal(size=(5, 2))])

    def test_dimension_mismatch_rejected(self, rng):
        scaler = BagStandardScaler().fit([rng.normal(size=(5, 2))])
        with pytest.raises(ValidationError):
            scaler.transform([rng.normal(size=(5, 3))])

    def test_empty_stream_rejected(self):
        with pytest.raises(ValidationError):
            BagStandardScaler().fit([])


class TestBagRobustScaler:
    def test_median_removed(self, rng):
        bags = [rng.normal(10.0, 1.0, size=(100, 2)) for _ in range(4)]
        scaled = BagRobustScaler().fit_transform(bags)
        assert abs(np.median(np.vstack(scaled))) < 0.1

    def test_robust_to_outliers(self, rng):
        clean = rng.normal(0.0, 1.0, size=(200, 1))
        contaminated = np.vstack([clean, np.full((5, 1), 1e6)])
        robust = BagRobustScaler().fit([contaminated])
        standard = BagStandardScaler().fit([contaminated])
        # The robust scale stays close to the clean IQR while the standard
        # deviation is blown up by the outliers.
        assert robust.iqr_[0] < 10.0
        assert standard.scale_[0] > 1000.0

    def test_requires_fit(self, rng):
        with pytest.raises(NotFittedError):
            BagRobustScaler().transform([rng.normal(size=(5, 1))])


class TestBagPCA:
    def test_projects_to_requested_dimension(self, rng):
        bags = [rng.normal(size=(40, 5)) for _ in range(4)]
        projected = BagPCA(n_components=2).fit_transform(bags)
        assert all(b.shape == (40, 2) for b in projected)

    def test_first_component_captures_dominant_direction(self, rng):
        # Data varying almost only along one axis.
        direction = np.array([1.0, 1.0]) / np.sqrt(2.0)
        bags = [
            np.outer(rng.normal(0, 5.0, 60), direction) + rng.normal(0, 0.1, size=(60, 2))
            for _ in range(3)
        ]
        pca = BagPCA(n_components=1).fit(bags)
        assert abs(np.dot(pca.components_[0], direction)) > 0.99

    def test_explained_variance_ratio_sums_below_one(self, rng):
        bags = [rng.normal(size=(50, 4)) for _ in range(3)]
        pca = BagPCA(n_components=2).fit(bags)
        assert 0.0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9

    def test_whiten_gives_unit_variance(self, rng):
        bags = [rng.normal(0, [10.0, 0.1], size=(500, 2)) for _ in range(2)]
        projected = BagPCA(n_components=2, whiten=True).fit_transform(bags)
        stacked = np.vstack(projected)
        assert np.allclose(stacked.std(axis=0), 1.0, atol=0.15)

    def test_too_many_components_rejected(self, rng):
        with pytest.raises(ValidationError):
            BagPCA(n_components=5).fit([rng.normal(size=(10, 2))])

    def test_requires_fit(self, rng):
        with pytest.raises(NotFittedError):
            BagPCA().transform([rng.normal(size=(5, 2))])


class TestInnovationFilter:
    def test_removes_linear_drift(self, rng):
        # Bags whose mean drifts linearly: after filtering, the segment means
        # should no longer trend.
        bags = [rng.normal(0.5 * t, 1.0, size=(80, 1)) for t in range(30)]
        filtered = InnovationFilter(order=2).transform(bags)
        means = np.array([bag.mean() for bag in filtered]).ravel()
        drift_original = abs(np.polyfit(np.arange(30), [b.mean() for b in bags], 1)[0])
        drift_filtered = abs(np.polyfit(np.arange(30), means, 1)[0])
        assert drift_filtered < 0.2 * drift_original

    def test_preserves_within_bag_shape(self, rng):
        bags = [rng.normal(t, 1.0, size=(60, 2)) for t in range(10)]
        filtered = InnovationFilter(order=1).transform(bags)
        # Centred spread of each bag is untouched (only the location moves).
        for original, transformed in zip(bags, filtered):
            assert np.allclose(
                original - original.mean(axis=0), transformed - transformed.mean(axis=0)
            )

    def test_preserves_abrupt_change_signal(self, rng):
        bags = [rng.normal(0.0, 1.0, size=(50, 1)) for _ in range(15)]
        bags += [rng.normal(8.0, 1.0, size=(50, 1)) for _ in range(15)]
        filtered = InnovationFilter(order=1).transform(bags)
        means = np.array([bag.mean() for bag in filtered]).ravel()
        # The first post-change bag should still stick out as an innovation.
        assert abs(means[15] - means[:15].mean()) > 3.0

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            InnovationFilter().transform(
                [rng.normal(size=(5, 1)), rng.normal(size=(5, 2))]
            )

    def test_empty_stream_rejected(self):
        with pytest.raises(ValidationError):
            InnovationFilter().transform([])
