"""Command-line front end: ``python -m tools.reprolint`` / ``reprolint``.

Exit codes: 0 — clean; 1 — violations found; 2 — a file could not be
parsed (or bad usage).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .engine import Rule, all_rules, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Project-invariant static analysis for the repro solver stack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. RL001,RL004); default: all",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rules and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line; print violations only",
    )
    return parser


def _select_rules(parser: argparse.ArgumentParser, spec: Optional[str]) -> List[type]:
    rules = all_rules()
    if spec is None:
        return rules
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    known = {rule.code for rule in rules}
    unknown = wanted - known
    if unknown:
        parser.error(f"unknown rule codes {sorted(unknown)}; known: {sorted(known)}")
    return [rule for rule in rules if rule.code in wanted]


def _print_rules() -> None:
    for rule_cls in all_rules():
        rule: Rule = rule_cls()
        print(f"{rule.code}  {rule.name:<22} {rule.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    report = lint_paths(args.paths, rules=_select_rules(parser, args.select))
    for failure in report.parse_failures:
        print(f"{failure.path}: parse error: {failure.message}", file=sys.stderr)
    for violation in report.violations:
        print(violation.render())
    if not args.quiet:
        summary = (
            f"reprolint: {report.n_files} file(s) checked, "
            f"{len(report.violations)} violation(s)"
        )
        if report.parse_failures:
            summary += f", {len(report.parse_failures)} parse failure(s)"
        print(summary, file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
