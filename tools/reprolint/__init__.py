"""reprolint — project-invariant static analysis for the repro solver stack.

The test suite enforces the project's load-bearing invariants at runtime;
this package enforces the *machine-checkable* half of them before any code
runs.  Each rule encodes an invariant introduced by an earlier PR:

========  ====================  ==================================================
Code      Name                  Invariant guarded
========  ====================  ==================================================
RL001     registry-consistency  ``EMD_SOLVERS`` is the single source of truth for
                                solver-backend names (PR 3): backend string
                                literals must be registry members, and CLI
                                ``choices=``/validation must reference the
                                registry, never re-list it.
RL002     rng-discipline        All randomness flows through seeded
                                ``numpy.random.Generator`` objects (PRs 1–2): no
                                legacy ``np.random.*`` module calls, no seedless
                                ``default_rng()``.
RL003     pool-safety           Callables submitted to executors must be
                                module-level, hence picklable by process pools
                                (PR 5): no lambdas or nested functions into
                                ``.submit()``/``.map()``.
RL004     exception-context     ``SolverError``/``CheckpointError`` raises carry
                                context (PRs 4–5): pair/shard kwargs or a
                                formatted message naming the failing problem.
RL005     config-plumbing       Every ``DetectorConfig`` field is reachable from
                                the CLI or explicitly allow-listed as internal
                                (PR 5 plumbed the solver knobs end to end).
========  ====================  ==================================================

Use as a library (``lint_paths``/``lint_source``) or as a CLI
(``python -m tools.reprolint src/`` or the ``reprolint`` console script).
Violations are suppressed per line with ``# reprolint: disable=RL001`` (or
``disable=all``).
"""

from .engine import (
    LintReport,
    ModuleInfo,
    ProjectContext,
    Rule,
    Violation,
    all_rules,
    lint_paths,
    lint_source,
)

__all__ = [
    "LintReport",
    "ModuleInfo",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_source",
]
