"""Project-invariant constants shared by the reprolint rules.

Everything reprolint knows about the repro codebase specifically lives
here, so the rule implementations stay generic and the fixtures in
``tests/reprolint_fixtures/`` can exercise them against self-contained
toy modules.
"""

from __future__ import annotations

from typing import Final, FrozenSet, Tuple

#: Name of the canonical solver registry tuple.  Exactly one literal
#: assignment to this name may exist in a linted file set (the project
#: keeps it in :mod:`repro.emd.registry`); everything else must reference
#: or derive from it.
REGISTRY_NAME: Final[str] = "EMD_SOLVERS"

#: Fallback registry members used when the linted file set does not
#: contain the defining assignment (e.g. linting one file at a time).
#: Must match ``repro.emd.registry.EMD_SOLVERS``; the self-check test
#: asserts they stay in sync.
DEFAULT_REGISTRY: Final[Tuple[str, ...]] = (  # reprolint: disable=RL001
    "auto",
    "linprog",
    "linprog_batch",
    "simplex",
    "sinkhorn_batch",
)

#: Variable / parameter / attribute names treated as holding a solver
#: backend string.  Comparisons and assignments of string literals against
#: these names are checked for registry membership.
BACKEND_NAMES: Final[FrozenSet[str]] = frozenset({"backend", "emd_backend"})

#: ``numpy.random`` attributes that remain allowed under rng-discipline:
#: the Generator construction surface.  Every other ``np.random.*`` call
#: is the legacy global-state API.
MODERN_RNG_ATTRS: Final[FrozenSet[str]] = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Executor / pool methods whose first callable argument ends up in
#: another thread or process and must therefore be a module-level
#: function (process pools pickle it; thread-mode code shares the same
#: call sites, so the invariant is enforced uniformly).
SUBMIT_METHODS: Final[FrozenSet[str]] = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)

#: Exception classes whose raises must carry failure context.
CONTEXT_EXCEPTIONS: Final[FrozenSet[str]] = frozenset(
    {"SolverError", "CheckpointError", "PoisonPairError"}
)

#: Keyword arguments that count as structured failure context.
CONTEXT_KWARGS: Final[FrozenSet[str]] = frozenset(
    {"pair_indices", "shard_id", "shard_rows", "manifest"}
)

#: The sanctioned backoff helpers (retry-discipline, RL006).  A retry
#: loop — a loop containing a ``try`` — may only sleep on delays derived
#: from one of these; hand-rolled ``time.sleep`` retry pacing diverges
#: from the project's tested exponential-backoff-with-jitter behaviour.
BACKOFF_HELPERS: Final[FrozenSet[str]] = frozenset({"compute_backoff"})

#: Call names treated as "a solver ran here" by retry-discipline
#: (RL006).  A broad ``except Exception`` around one of these can
#: swallow a :class:`~repro.exceptions.SolverError` that the
#: orchestrator needed for retry accounting or poison-pair quarantine.
SOLVER_CALL_NAMES: Final[FrozenSet[str]] = frozenset(
    {
        "compute_pairs",
        "emd",
        "emd_with_flow",
        "banded_matrix",
        "banded_emd_matrix",
        "solve_emd_linprog",
        "solve_emd_linprog_batch",
        "sinkhorn_emd",
        "sinkhorn_transport",
        "sinkhorn_transport_batch",
        "solve_transportation",
    }
)

#: The detector configuration dataclass whose fields must be reachable
#: from the CLI.
CONFIG_CLASS: Final[str] = "DetectorConfig"

#: ``DetectorConfig`` fields deliberately *not* exposed on the CLI.
#:
#: - ``histogram_range``: a per-dimension (min, max) sequence; no flat
#:   flag syntax represents it faithfully, and library callers who need
#:   a fixed range construct the config directly.
#: - ``estimator``: a nested ``EstimatorConfig`` of information-estimator
#:   constants from the paper; tuning them is a library-level operation,
#:   not a CLI switch.
CONFIG_INTERNAL_FIELDS: Final[FrozenSet[str]] = frozenset(
    {"histogram_range", "estimator"}
)

#: Identifier fragments that mark a function as handling persisted
#: detector state (snapshot-discipline, RL007).  An ``np.load`` whose
#: enclosing function name — or whose argument expressions — mention one
#: of these is reading a stamped payload and must validate it.
SNAPSHOT_TERMS: Final[FrozenSet[str]] = frozenset({"snapshot", "checkpoint"})

#: Validation evidence snapshot-discipline (RL007) requires around a
#: stamped-payload read: both the payload checksum and the config/plan
#: fingerprint must be consulted before the data is trusted.
SNAPSHOT_VALIDATION_TERMS: Final[FrozenSet[str]] = frozenset(
    {"checksum", "fingerprint"}
)
