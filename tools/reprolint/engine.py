"""The reprolint rule engine.

A lint run happens in two passes over the parsed modules:

1. **collect** — every rule sees every module and records whatever
   project-wide facts it needs in the shared :class:`ProjectContext`
   (where the solver registry is defined, which ``DetectorConfig``
   fields exist, which keywords the CLI passes, ...).
2. **check / finalize** — every rule emits :class:`Violation` objects,
   per module and then once project-wide.

Rules are small classes deriving from :class:`Rule`; the engine owns
file discovery, parsing, suppression comments and ordering, so a rule
only looks at ASTs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

_SUPPRESSION_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+|all)")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    name: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.name}] {self.message}"


@dataclass(frozen=True)
class ParseFailure:
    """A file the engine could not parse (reported, exit code 2)."""

    path: str
    message: str


@dataclass
class ModuleInfo:
    """One parsed module plus the per-line suppression map."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        active = self.suppressions.get(line)
        if not active:
            return False
        return "all" in active or code in active


@dataclass
class ProjectContext:
    """Facts collected across the whole file set, shared by all rules.

    Rules may also stash arbitrary private state under ``scratch`` keyed
    by their code; the typed attributes below are the cross-rule ones.
    """

    #: Ordered solver-registry members, once a defining assignment is seen.
    registry_members: Optional[Tuple[str, ...]] = None
    #: Every literal assignment site of the registry name: (path, line, col).
    registry_sites: List[Tuple[str, int, int]] = field(default_factory=list)
    scratch: Dict[str, object] = field(default_factory=dict)


class Rule:
    """Base class for reprolint rules."""

    code: str = ""
    name: str = ""
    description: str = ""

    def collect(self, module: ModuleInfo, context: ProjectContext) -> None:
        """First pass: record project-wide facts (optional)."""

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        """Second pass: yield per-module violations (optional)."""
        return iter(())

    def finalize(self, context: ProjectContext) -> Iterator[Violation]:
        """After all modules: yield project-level violations (optional)."""
        return iter(())

    def violation(self, module_path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=module_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            name=self.name,
            message=message,
        )


@dataclass
class LintReport:
    """Outcome of a lint run."""

    violations: List[Violation]
    parse_failures: List[ParseFailure]
    n_files: int

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_failures

    @property
    def exit_code(self) -> int:
        if self.parse_failures:
            return 2
        return 1 if self.violations else 0


def all_rules() -> List[Type[Rule]]:
    """The built-in rule classes, in code order."""
    from .rules import RULES

    return list(RULES)


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        spec = match.group(1)
        codes = {part.strip() for part in spec.split(",") if part.strip()}
        if codes:
            suppressions[lineno] = codes
    return suppressions


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under the given files/directories, sorted, deduplicated."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _load_module(path: Path) -> Tuple[Optional[ModuleInfo], Optional[ParseFailure]]:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return None, ParseFailure(path=str(path), message=str(exc))
    return (
        ModuleInfo(
            path=str(path),
            source=source,
            tree=tree,
            suppressions=_parse_suppressions(source),
        ),
        None,
    )


def _run(
    modules: List[ModuleInfo],
    failures: List[ParseFailure],
    rule_classes: Optional[Iterable[Type[Rule]]],
) -> LintReport:
    rules = [cls() for cls in (rule_classes if rule_classes is not None else all_rules())]
    context = ProjectContext()
    for rule in rules:
        for module in modules:
            rule.collect(module, context)
    violations: List[Violation] = []
    modules_by_path = {module.path: module for module in modules}
    for rule in rules:
        for module in modules:
            violations.extend(rule.check(module, context))
        violations.extend(rule.finalize(context))
    kept = [
        v
        for v in violations
        if not (
            v.path in modules_by_path and modules_by_path[v.path].suppressed(v.line, v.code)
        )
    ]
    return LintReport(
        violations=sorted(set(kept)),
        parse_failures=failures,
        n_files=len(modules),
    )


def lint_paths(
    paths: Sequence[object],
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> LintReport:
    """Lint files and directories; the main library entry point."""
    modules: List[ModuleInfo] = []
    failures: List[ParseFailure] = []
    for file_path in discover_files([Path(str(p)) for p in paths]):
        module, failure = _load_module(file_path)
        if failure is not None:
            failures.append(failure)
        if module is not None:
            modules.append(module)
    return _run(modules, failures, rules)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> LintReport:
    """Lint one in-memory module (used by the fixture tests)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return LintReport(
            violations=[], parse_failures=[ParseFailure(path=path, message=str(exc))], n_files=0
        )
    module = ModuleInfo(
        path=path, source=source, tree=tree, suppressions=_parse_suppressions(source)
    )
    return _run([module], [], rules)
