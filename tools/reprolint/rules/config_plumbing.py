"""RL005 — every ``DetectorConfig`` field is reachable from the CLI.

PR 5 plumbed the Sinkhorn tolerance and annealing schedule end to end
after they had silently existed engine-side only; this rule prevents
the next knob from being stranded.  It collects the field names of the
``DetectorConfig`` dataclass and the keyword arguments of every
``DetectorConfig(...)`` construction in the linted file set (the CLI
builds its config with explicit keywords), then reports any field that
no call site ever passes — unless the field is explicitly allow-listed
as internal in :mod:`tools.reprolint.project`.

The rule stays silent when the file set contains the class but no
construction sites (e.g. linting ``config.py`` alone), so partial runs
cannot false-positive.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..asthelpers import terminal_name
from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import CONFIG_CLASS, CONFIG_INTERNAL_FIELDS

_SCRATCH_FIELDS = "RL005.fields"
_SCRATCH_PASSED = "RL005.passed"


class ConfigPlumbingRule(Rule):
    code = "RL005"
    name = "config-plumbing"
    description = (
        f"every {CONFIG_CLASS} field must be passed by some "
        f"{CONFIG_CLASS}(...) call site (the CLI) or be allow-listed as "
        "internal"
    )

    def collect(self, module: ModuleInfo, context: ProjectContext) -> None:
        fields: Dict[str, Tuple[str, int, int]] = context.scratch.setdefault(  # type: ignore[assignment]
            _SCRATCH_FIELDS, {}
        )
        passed: Set[str] = context.scratch.setdefault(_SCRATCH_PASSED, set())  # type: ignore[assignment]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
                for statement in node.body:
                    if not isinstance(statement, ast.AnnAssign):
                        continue
                    target = statement.target
                    if not isinstance(target, ast.Name) or target.id.startswith("_"):
                        continue
                    if terminal_name(statement.annotation) == "ClassVar":
                        continue
                    fields.setdefault(
                        target.id,
                        (module.path, statement.lineno, statement.col_offset),
                    )
            elif isinstance(node, ast.Call) and terminal_name(node.func) == CONFIG_CLASS:
                explicit = [kw.arg for kw in node.keywords if kw.arg is not None]
                passed.update(explicit)

    def finalize(self, context: ProjectContext) -> Iterator[Violation]:
        fields: Dict[str, Tuple[str, int, int]] = context.scratch.get(_SCRATCH_FIELDS, {})  # type: ignore[assignment]
        passed: Set[str] = context.scratch.get(_SCRATCH_PASSED, set())  # type: ignore[assignment]
        if not fields or not passed:
            return
        missing: List[str] = [
            name
            for name in fields
            if name not in passed and name not in CONFIG_INTERNAL_FIELDS
        ]
        for name in missing:
            path, line, col = fields[name]
            yield Violation(
                path=path,
                line=line,
                col=col,
                code=self.code,
                name=self.name,
                message=(
                    f"{CONFIG_CLASS} field {name!r} is not passed by any "
                    f"{CONFIG_CLASS}(...) call site in the linted tree; "
                    "plumb it through the CLI or allow-list it in "
                    "tools.reprolint.project.CONFIG_INTERNAL_FIELDS"
                ),
            )
