"""RL003 — callables handed to executors must be module-level.

PR 5's ``ShardRunner`` and the engine's worker pools submit jobs to
``concurrent.futures`` executors.  Process pools *pickle* the submitted
callable, and pickle resolves functions by qualified name — lambdas and
functions nested inside another function do not survive the trip.  The
thread and process pools share the same call sites, so the invariant is
enforced uniformly: anything passed to ``.submit()``/``.map()`` (and
friends) must be a plain module-level function.

Flagged:

* a ``lambda`` passed directly (or wrapped in ``functools.partial``);
* a name bound to a nested ``def`` (closure) rather than a module-level
  function;
* a name bound to a ``lambda`` anywhere — even at module level a lambda
  pickles by its ``<lambda>`` qualname and fails.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..asthelpers import terminal_name
from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import SUBMIT_METHODS


class PoolSafetyRule(Rule):
    code = "RL003"
    name = "pool-safety"
    description = (
        "callables submitted to executor pools must be module-level "
        "functions (picklable); no lambdas or closures"
    )

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        module_funcs: Set[str] = set()
        nested_funcs: Set[str] = set()
        lambda_names: Set[str] = set()

        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_funcs.add(statement.name)

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if (
                        isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and child is not node
                    ):
                        nested_funcs.add(child.name)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lambda_names.add(target.id)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
                and node.args
            ):
                continue
            candidate = self._unwrap_partial(node.args[0])
            method = node.func.attr
            if isinstance(candidate, ast.Lambda):
                yield self.violation(
                    module.path,
                    candidate,
                    f"lambda passed to .{method}(); process pools cannot "
                    "pickle lambdas — define a module-level function",
                )
                continue
            name = candidate.id if isinstance(candidate, ast.Name) else None
            if name is None:
                continue
            if name in lambda_names:
                yield self.violation(
                    module.path,
                    node.args[0],
                    f"{name!r} passed to .{method}() is bound to a lambda; "
                    "lambdas pickle by their '<lambda>' qualname and fail in "
                    "process pools — define a module-level function",
                )
            elif name in nested_funcs and name not in module_funcs:
                yield self.violation(
                    module.path,
                    node.args[0],
                    f"nested function {name!r} passed to .{method}(); "
                    "closures cannot be pickled into process pools — move it "
                    "to module level",
                )

    @staticmethod
    def _unwrap_partial(node: ast.AST) -> ast.AST:
        """``functools.partial(f, ...)`` → ``f`` (recursively)."""
        while (
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "partial"
            and node.args
        ):
            node = node.args[0]
        return node
