"""RL008 — exported definitions carry docstrings that match their signatures.

The public surface of the library is whatever ``__all__`` exports, and
the numpy-style docstrings on that surface are the API reference
(``docs/api.md`` links straight into them).  Two failure modes creep in
silently as code evolves:

* an exported class or function with **no docstring at all** — the
  symbol is public but undocumented;
* a docstring whose ``Parameters`` section documents a name that no
  longer exists in the signature — the documentation has drifted from
  the code, which is worse than no documentation.

Concretely, for every name in a module-level ``__all__`` literal that is
defined in the same module as a class or function:

* the definition must have a docstring (for classes the class docstring);
* every parameter name documented in a numpy-style ``Parameters``
  section must appear in the signature — the function's own parameters,
  or for classes the ``__init__`` parameters (dataclass field names for
  ``@dataclass`` classes without an explicit ``__init__``).  Classes
  whose constructors accept ``**kwargs`` pass-throughs are exempt from
  the name check: their documented parameters legitimately name keys of
  the forwarded mapping.

The reverse direction — signature parameters missing from the docstring
— is deliberately not enforced: terse docstrings are fine, stale ones
are not.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Union

from ..engine import ModuleInfo, ProjectContext, Rule, Violation

_Def = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_PARAM_LINE_RE = re.compile(
    r"^(?P<names>[*]{0,2}[A-Za-z_][A-Za-z0-9_]*"
    r"(?:\s*,\s*[*]{0,2}[A-Za-z_][A-Za-z0-9_]*)*)\s*:(?:\s|$)|"
    r"^(?P<bare>[*]{0,2}[A-Za-z_][A-Za-z0-9_]*)\s*$"
)
_UNDERLINE_RE = re.compile(r"^\s*-{3,}\s*$")


def _exported_names(tree: ast.Module) -> Set[str]:
    """Names listed in a module-level ``__all__`` literal."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.add(element.value)
    return names


def _signature_names(function: _Def) -> Set[str]:
    """Every parameter name of ``function``, without self/cls."""
    arguments = function.args
    names = [a.arg for a in arguments.posonlyargs + arguments.args + arguments.kwonlyargs]
    if arguments.vararg is not None:
        names.append(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.append(arguments.kwarg.arg)
    return {name for name in names if name not in ("self", "cls")}


def _has_kwargs(function: _Def) -> bool:
    return function.args.kwarg is not None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _documented_parameters(docstring: str) -> List[str]:
    """Parameter names documented in a numpy-style ``Parameters`` section."""
    lines = docstring.splitlines()
    names: List[str] = []
    in_section = False
    base_indent: Optional[int] = None
    for index, line in enumerate(lines):
        stripped = line.strip()
        underlined = index + 1 < len(lines) and _UNDERLINE_RE.match(lines[index + 1])
        if underlined and stripped == "Parameters":
            in_section = True
            base_indent = None
            continue
        if underlined and stripped and stripped != "Parameters":
            in_section = False
            continue
        if not in_section or not stripped or _UNDERLINE_RE.match(line):
            continue
        indent = len(line) - len(line.lstrip())
        if base_indent is None:
            base_indent = indent
        if indent != base_indent:
            continue
        match = _PARAM_LINE_RE.match(stripped)
        if match is None or match.group("names") is None:
            continue
        for name in match.group("names").split(","):
            names.append(name.strip().lstrip("*"))
    return names


class DocstringDisciplineRule(Rule):
    code = "RL008"
    name = "docstring-discipline"
    description = (
        "__all__-exported classes/functions must carry a docstring whose "
        "documented parameter names exist in the signature"
    )

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        exported = _exported_names(module.tree)
        if not exported:
            return
        definitions: Dict[str, ast.stmt] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                definitions[node.name] = node
        for name in sorted(exported):
            node = definitions.get(name)
            if node is None:
                continue  # re-export; checked where it is defined
            yield from self._check_definition(module, node)

    def _check_definition(
        self, module: ModuleInfo, node: ast.stmt
    ) -> Iterator[Violation]:
        docstring = ast.get_docstring(node, clean=True)
        if not docstring:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield self.violation(
                module.path,
                node,
                f"exported {kind} {node.name} has no docstring; everything "
                "reachable through __all__ is public API and must be documented",
            )
            return
        documented = _documented_parameters(docstring)
        if not documented:
            return
        signature = self._signature_for(node)
        if signature is None:
            return
        unknown = sorted(set(documented) - signature)
        if unknown:
            yield self.violation(
                module.path,
                node,
                f"docstring of exported {node.name} documents parameter(s) "
                f"{', '.join(unknown)} that do not exist in the signature; "
                "the documentation has drifted from the code",
            )

    @staticmethod
    def _signature_for(node: ast.stmt) -> Optional[Set[str]]:
        """Parameter names the docstring may legitimately document."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _has_kwargs(node):
                return None
            return _signature_names(node)
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and member.name == "__init__"
                ):
                    if _has_kwargs(member):
                        return None
                    return _signature_names(member)
            if _is_dataclass(node):
                return {
                    member.target.id
                    for member in node.body
                    if isinstance(member, ast.AnnAssign)
                    and isinstance(member.target, ast.Name)
                }
            return None
        return None
