"""RL006 — retry loops must use the sanctioned backoff helper and never
swallow solver failures.

The fault-tolerant shard orchestrator (PR 7) centralised retry pacing in
:func:`repro.emd.orchestrator.compute_backoff` — exponential growth,
cap, seeded jitter — and built its quarantine accounting on
:class:`~repro.exceptions.SolverError` propagating out of every solve.
Two coding patterns silently undermine that design:

* a **hand-rolled retry loop**: a ``while``/``for`` that retries a
  ``try`` block and paces itself with ``time.sleep`` on an ad-hoc delay
  instead of one derived from the shared backoff helper.  Such loops
  drift from the tested backoff behaviour (no cap, no jitter, retry
  storms);
* a **solver-error swallow**: an ``except`` handler that catches
  :class:`SolverError` (by name, or behind a broad ``Exception`` /
  ``BaseException`` around solver calls) and then neither re-raises,
  routes to quarantine, nor even inspects the exception.  The failure —
  and its ``pair_indices`` context — vanishes before the orchestrator's
  retry/poison machinery can see it.

Concretely, a violation is:

* a ``time.sleep(...)`` call inside a loop that also contains a ``try``
  statement, unless the loop derives a delay from a helper in
  :data:`~tools.reprolint.project.BACKOFF_HELPERS`;
* an ``except`` handler whose clause names ``SolverError`` (alone or in
  a tuple), or names ``Exception``/``BaseException`` while the guarded
  ``try`` body calls a solver entry point
  (:data:`~tools.reprolint.project.SOLVER_CALL_NAMES`), and whose body
  has no ``raise``, no call mentioning quarantine, and never uses the
  bound exception.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..asthelpers import dotted_name, terminal_name
from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import BACKOFF_HELPERS, SOLVER_CALL_NAMES

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_time_sleep(node: ast.Call) -> bool:
    return dotted_name(node.func) in ("time.sleep", "sleep")


def _calls_backoff_helper(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and terminal_name(node.func) in BACKOFF_HELPERS:
            return True
    return False


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    """The exception class names an ``except`` clause catches."""
    clause = handler.type
    if clause is None:
        yield "BaseException"  # a bare ``except:`` catches everything
        return
    elements = clause.elts if isinstance(clause, ast.Tuple) else [clause]
    for element in elements:
        name = terminal_name(element)
        if name is not None:
            yield name


def _calls_solver(statements: list) -> bool:
    for statement in statements:
        for node in ast.walk(statement):
            if isinstance(node, ast.Call) and terminal_name(node.func) in SOLVER_CALL_NAMES:
                return True
    return False


def _handler_disposes_properly(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises, quarantines or inspects the error."""
    bound = handler.name
    for statement in handler.body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name is not None and "quarantine" in name.lower():
                    return True
            if bound is not None and isinstance(node, ast.Name) and node.id == bound:
                return True
    return False


class RetryDisciplineRule(Rule):
    code = "RL006"
    name = "retry-discipline"
    description = (
        "retry loops must pace themselves with the shared backoff helper, "
        "and except handlers must not swallow SolverError"
    )

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                yield from self._check_retry_loop(module, node)
            elif isinstance(node, ast.Try):
                yield from self._check_handlers(module, node)

    def _check_retry_loop(self, module: ModuleInfo, loop: ast.AST) -> Iterator[Violation]:
        body = getattr(loop, "body", []) + getattr(loop, "orelse", [])
        has_try = any(
            isinstance(inner, ast.Try)
            for statement in body
            for inner in ast.walk(statement)
        )
        if not has_try or _calls_backoff_helper(loop):
            return
        for statement in body:
            for inner in ast.walk(statement):
                if isinstance(inner, ast.Call) and _is_time_sleep(inner):
                    yield self.violation(
                        module.path,
                        inner,
                        "hand-rolled retry pacing: this loop retries a try "
                        "block but sleeps on an ad-hoc delay; derive it from "
                        "compute_backoff() (exponential growth, cap, seeded "
                        "jitter) instead",
                    )

    def _check_handlers(self, module: ModuleInfo, node: ast.Try) -> Iterator[Violation]:
        guards_solver: Optional[bool] = None
        for handler in node.handlers:
            names = set(_handler_names(handler))
            catches_solver_error = "SolverError" in names
            if not catches_solver_error and names & _BROAD_EXCEPTIONS:
                if guards_solver is None:
                    guards_solver = _calls_solver(node.body)
                catches_solver_error = guards_solver
            if not catches_solver_error:
                continue
            if _handler_disposes_properly(handler):
                continue
            caught = ", ".join(sorted(names))
            yield self.violation(
                module.path,
                handler,
                f"except handler ({caught}) swallows SolverError: the "
                "failure (and its pair_indices context) never reaches the "
                "retry/quarantine machinery; re-raise, quarantine, or at "
                "least record the bound exception",
            )
