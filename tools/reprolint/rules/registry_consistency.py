"""RL001 — the solver registry is the single source of truth.

PR 3 introduced ``EMD_SOLVERS`` so the engine, ``DetectorConfig`` and the
CLI validate backend names against one tuple.  This rule keeps it that
way statically:

* exactly one literal assignment to ``EMD_SOLVERS`` may exist;
* no other name may be assigned a literal tuple/list that re-lists two
  or more registry members (derive subsets from the registry instead);
* ``choices=`` keyword arguments (argparse) must reference the registry,
  never re-list its members;
* every backend string literal that is compared against, assigned to or
  passed as a backend-named variable must be a registry member — a typo
  like ``"linprog-batch"`` becomes a lint error instead of a runtime
  surprise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..asthelpers import string_elements, terminal_name
from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import BACKEND_NAMES, DEFAULT_REGISTRY, REGISTRY_NAME


class RegistryConsistencyRule(Rule):
    code = "RL001"
    name = "registry-consistency"
    description = (
        f"backend names must come from the single {REGISTRY_NAME} registry; "
        "no re-listed literals, no unknown backend strings"
    )

    # ------------------------------------------------------------------ #
    # Pass 1: find the registry definition(s)
    # ------------------------------------------------------------------ #
    def collect(self, module: ModuleInfo, context: ProjectContext) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == REGISTRY_NAME):
                continue
            members = string_elements(value)
            if members is None:
                continue
            context.registry_sites.append((module.path, node.lineno, node.col_offset))
            if context.registry_members is None:
                context.registry_members = tuple(members)

    # ------------------------------------------------------------------ #
    # Pass 2: per-module checks
    # ------------------------------------------------------------------ #
    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        registry = context.registry_members or DEFAULT_REGISTRY
        member_set = set(registry)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                yield from self._check_relist(module, node, member_set)
            elif isinstance(node, ast.AnnAssign):
                yield from self._check_ann_assign(module, node, member_set)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node, member_set)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, member_set)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node, member_set)

    def _check_relist(
        self, module: ModuleInfo, node: ast.Assign, members: set
    ) -> Iterator[Violation]:
        elements = string_elements(node.value)
        if elements is None:
            return
        overlap = [e for e in elements if e in members]
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if REGISTRY_NAME in targets:
            return  # definition sites are handled in finalize()
        if len(overlap) >= 2:
            yield self.violation(
                module.path,
                node,
                f"literal tuple re-lists solver registry members {overlap}; "
                f"derive it from {REGISTRY_NAME} instead",
            )

    def _check_ann_assign(
        self, module: ModuleInfo, node: ast.AnnAssign, members: set
    ) -> Iterator[Violation]:
        if node.value is None or not isinstance(node.target, ast.Name):
            return
        if node.target.id == REGISTRY_NAME:
            return  # definition sites are handled in collect()/finalize()
        if node.target.id in BACKEND_NAMES:
            yield from self._check_backend_constant(module, node.value, members)
        elements = string_elements(node.value)
        if elements is not None and len([e for e in elements if e in members]) >= 2:
            yield self.violation(
                module.path,
                node,
                f"literal tuple re-lists solver registry members; "
                f"derive it from {REGISTRY_NAME} instead",
            )

    def _check_backend_constant(
        self, module: ModuleInfo, value: ast.AST, members: set
    ) -> Iterator[Violation]:
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and value.value not in members
        ):
            yield self.violation(
                module.path,
                value,
                f"backend string {value.value!r} is not a member of "
                f"{REGISTRY_NAME} {tuple(sorted(members))}",
            )

    def _check_compare(
        self, module: ModuleInfo, node: ast.Compare, members: set
    ) -> Iterator[Violation]:
        sides = [node.left, *node.comparators]
        if not any(terminal_name(side) in BACKEND_NAMES for side in sides):
            return
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                yield from self._check_backend_constant(module, side, members)
            elif isinstance(side, (ast.Tuple, ast.List)):
                elements = string_elements(side)
                if elements is None:
                    continue
                for element, element_node in zip(elements, side.elts):
                    if element not in members:
                        yield from self._check_backend_constant(
                            module, element_node, members
                        )

    def _check_call(
        self, module: ModuleInfo, node: ast.Call, members: set
    ) -> Iterator[Violation]:
        for keyword in node.keywords:
            if keyword.arg in BACKEND_NAMES:
                yield from self._check_backend_constant(module, keyword.value, members)
            if keyword.arg == "choices":
                elements = string_elements(keyword.value)
                if elements is None:
                    continue
                overlap = [e for e in elements if e in members]
                if len(overlap) >= 2:
                    yield self.violation(
                        module.path,
                        keyword.value,
                        f"choices= re-lists solver registry members {overlap}; "
                        f"pass choices={REGISTRY_NAME} (or a subset derived "
                        "from it) instead",
                    )

    def _check_defaults(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef,
        members: set,
    ) -> Iterator[Violation]:
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults) :], args.defaults):
            if arg.arg in BACKEND_NAMES:
                yield from self._check_backend_constant(module, default, members)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and arg.arg in BACKEND_NAMES:
                yield from self._check_backend_constant(module, kw_default, members)

    # ------------------------------------------------------------------ #
    # Project-wide: a single definition site
    # ------------------------------------------------------------------ #
    def finalize(self, context: ProjectContext) -> Iterator[Violation]:
        for path, line, col in context.registry_sites[1:]:
            first = context.registry_sites[0]
            yield Violation(
                path=path,
                line=line,
                col=col,
                code=self.code,
                name=self.name,
                message=(
                    f"{REGISTRY_NAME} is redefined here; the single literal "
                    f"definition lives at {first[0]}:{first[1]}"
                ),
            )
