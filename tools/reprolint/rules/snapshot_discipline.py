"""RL007 — snapshot payload reads must validate checksum and fingerprint.

The project's persisted state — shard checkpoints
(:mod:`repro.emd.sharding`) and stream snapshots
(:mod:`repro.service.snapshots`) — is stamped: every file carries a
sha256 **checksum** over its payload bytes and a configuration
**fingerprint**.  The loaders reject corrupt or stale files instead of
merging silently-wrong numbers into a resumed run.  That guarantee only
holds while every read goes through a validating loader; an ``np.load``
of a snapshot that skips the stamps reintroduces exactly the failure
class the format was designed to catch.

Concretely, a violation is an ``np.load`` / ``numpy.load`` call that is
*snapshot-related* — its enclosing function's name, or any identifier or
string in its argument expressions, mentions a term from
:data:`~tools.reprolint.project.SNAPSHOT_TERMS` — while the enclosing
function never references **both** validation terms of
:data:`~tools.reprolint.project.SNAPSHOT_VALIDATION_TERMS` (the payload
checksum and the config/plan fingerprint).  The message names the
missing evidence.

Deliberate corruption writers (the fault-injection corruptors in
:mod:`repro.testing.faults`) read snapshots precisely to break them and
carry per-line ``# reprolint: disable=RL007`` suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..asthelpers import dotted_name
from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import SNAPSHOT_TERMS, SNAPSHOT_VALIDATION_TERMS

_LOAD_NAMES = frozenset({"np.load", "numpy.load"})


def _is_numpy_load(node: ast.Call) -> bool:
    return dotted_name(node.func) in _LOAD_NAMES


def _mention_tokens(node: ast.AST) -> Iterator[str]:
    """Lower-cased identifiers and string literals appearing under ``node``."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name):
            yield inner.id.lower()
        elif isinstance(inner, ast.Attribute):
            yield inner.attr.lower()
        elif isinstance(inner, ast.arg):
            yield inner.arg.lower()
        elif isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            yield inner.value.lower()


def _mentions_any(tokens: List[str], terms: Set[str]) -> bool:
    return any(term in token for token in tokens for term in terms)


class SnapshotDisciplineRule(Rule):
    code = "RL007"
    name = "snapshot-discipline"
    description = (
        "np.load of a snapshot/checkpoint payload must sit in a function "
        "that validates both the payload checksum and the config fingerprint"
    )

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        for function in ast.walk(module.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(module, function)

    def _check_function(
        self,
        module: ModuleInfo,
        function: ast.AST,
    ) -> Iterator[Violation]:
        loads = [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Call) and _is_numpy_load(node)
        ]
        if not loads:
            return
        function_name = getattr(function, "name", "").lower()
        name_is_snapshotty = any(term in function_name for term in SNAPSHOT_TERMS)
        validation: Optional[List[str]] = None
        for load in loads:
            argument_tokens = [
                token
                for argument in list(load.args) + [kw.value for kw in load.keywords]
                for token in _mention_tokens(argument)
            ]
            if not name_is_snapshotty and not _mentions_any(
                argument_tokens, set(SNAPSHOT_TERMS)
            ):
                continue
            if validation is None:
                validation = list(_mention_tokens(function))
            missing = sorted(
                term
                for term in SNAPSHOT_VALIDATION_TERMS
                if not _mentions_any(validation, {term})
            )
            if not missing:
                continue
            yield self.violation(
                module.path,
                load,
                f"snapshot payload read without {' or '.join(missing)} "
                "validation: this np.load trusts a stamped snapshot/"
                "checkpoint file, but the enclosing function "
                f"{getattr(function, 'name', '?')}() never consults its "
                f"{' or '.join(missing)}; route the read through the "
                "validating loader (load_stream_snapshot / "
                "load_shard_checkpoint) or verify the stamps here",
            )
