"""The built-in reprolint rules, one module per project invariant."""

from .config_plumbing import ConfigPlumbingRule
from .docstring_discipline import DocstringDisciplineRule
from .exception_context import ExceptionContextRule
from .pool_safety import PoolSafetyRule
from .registry_consistency import RegistryConsistencyRule
from .retry_discipline import RetryDisciplineRule
from .rng_discipline import RngDisciplineRule
from .snapshot_discipline import SnapshotDisciplineRule

#: All rules in code order (RL001 …).
RULES = (
    RegistryConsistencyRule,
    RngDisciplineRule,
    PoolSafetyRule,
    ExceptionContextRule,
    ConfigPlumbingRule,
    RetryDisciplineRule,
    SnapshotDisciplineRule,
    DocstringDisciplineRule,
)

__all__ = [
    "RULES",
    "RegistryConsistencyRule",
    "RngDisciplineRule",
    "PoolSafetyRule",
    "ExceptionContextRule",
    "ConfigPlumbingRule",
    "RetryDisciplineRule",
    "SnapshotDisciplineRule",
    "DocstringDisciplineRule",
]
