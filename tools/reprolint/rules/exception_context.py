"""RL004 — solver and checkpoint failures must carry context.

PR 4 gave ``SolverError`` its ``pair_indices`` attribute and PR 5 added
``shard_id``/``shard_rows``, precisely because a bare "solver failed"
out of a thousand-pair batched build is undebuggable.  This rule keeps
new raise sites honest: every ``raise SolverError(...)`` or
``raise CheckpointError(...)`` must either

* pass one of the structured context keywords (``pair_indices=``,
  ``shard_id=``, ``shard_rows=``), or
* carry a *formatted* message (f-string, ``%``/``.format`` or any
  expression over runtime state) that names the failing problem.

A constant-string message with no context kwargs — ``raise
SolverError("solve failed")`` — is a violation, as is re-raising the
bare class.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..asthelpers import is_formatted_message, terminal_name
from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import CONTEXT_EXCEPTIONS, CONTEXT_KWARGS


class ExceptionContextRule(Rule):
    code = "RL004"
    name = "exception-context"
    description = (
        "SolverError/CheckpointError raises must pass pair/shard context "
        "kwargs or a formatted message naming the failing problem"
    )

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            exc_name = terminal_name(exc if not isinstance(exc, ast.Call) else exc.func)
            if exc_name not in CONTEXT_EXCEPTIONS:
                continue
            if not isinstance(exc, ast.Call):
                yield self.violation(
                    module.path,
                    node,
                    f"bare `raise {exc_name}` carries no context; construct "
                    "it with a message naming the failing problem",
                )
                continue
            if any(kw.arg in CONTEXT_KWARGS for kw in exc.keywords):
                continue
            if any(is_formatted_message(arg) for arg in exc.args):
                continue
            detail = "no message at all" if not exc.args else "a constant message"
            yield self.violation(
                module.path,
                node,
                f"raise {exc_name}(...) with {detail} and no context kwargs; "
                "pass pair_indices=/shard_id=/shard_rows= or interpolate the "
                "failing problem (shape, path, indices) into the message",
            )
