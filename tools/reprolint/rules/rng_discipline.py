"""RL002 — seeded ``Generator`` discipline, no legacy global RNG.

The 1e-9/1e-12 parity harnesses and every "seeded end-to-end" test rely
on randomness flowing exclusively through ``numpy.random.Generator``
objects that are constructed from an explicit seed and passed down.  A
single ``np.random.seed()``/``np.random.rand()`` call reintroduces
process-global state that those guarantees cannot see.  This rule flags:

* calls to any legacy ``numpy.random`` module function (everything other
  than the ``default_rng``/``Generator``/bit-generator construction
  surface);
* ``default_rng()`` called without an argument and ``default_rng(None)``
  — seedless generators are allowed only when the *caller* passed the
  ``None`` through an explicit seed parameter;
* ``from numpy.random import rand``-style imports of legacy functions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import ModuleInfo, ProjectContext, Rule, Violation
from ..project import MODERN_RNG_ATTRS


class RngDisciplineRule(Rule):
    code = "RL002"
    name = "rng-discipline"
    description = (
        "randomness must flow through numpy.random.Generator objects with "
        "explicit seeds; no legacy np.random.* module calls"
    )

    def check(self, module: ModuleInfo, context: ProjectContext) -> Iterator[Violation]:
        numpy_aliases: Set[str] = set()
        random_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname is not None:
                            random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in MODERN_RNG_ATTRS:
                            yield self.violation(
                                module.path,
                                node,
                                f"import of legacy numpy.random.{alias.name}; "
                                "use a seeded numpy.random.Generator instead",
                            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            rng_attr = self._random_attribute(node.func, numpy_aliases, random_aliases)
            if rng_attr is None:
                continue
            if rng_attr not in MODERN_RNG_ATTRS:
                yield self.violation(
                    module.path,
                    node,
                    f"legacy global-state RNG call numpy.random.{rng_attr}(); "
                    "use a seeded numpy.random.Generator (default_rng(seed)) "
                    "passed down explicitly",
                )
            elif rng_attr == "default_rng" and self._is_seedless(node):
                yield self.violation(
                    module.path,
                    node,
                    "default_rng() without an explicit seed argument; thread a "
                    "seed (or caller-supplied Generator) through instead",
                )

    @staticmethod
    def _random_attribute(
        func: ast.AST, numpy_aliases: Set[str], random_aliases: Set[str]
    ) -> "str | None":
        """The ``numpy.random`` attribute a call resolves to, if any."""
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name) and base.id in random_aliases:
            return func.attr
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        ):
            return func.attr
        return None

    @staticmethod
    def _is_seedless(node: ast.Call) -> bool:
        if node.keywords:
            has_seed_kwarg = any(kw.arg in (None, "seed") for kw in node.keywords)
        else:
            has_seed_kwarg = False
        if not node.args and not has_seed_kwarg:
            return True
        if len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            return isinstance(arg, ast.Constant) and arg.value is None
        return False
