"""Small AST utilities shared by the reprolint rules."""

from __future__ import annotations

import ast
from typing import List, Optional


def string_elements(node: ast.AST) -> Optional[List[str]]:
    """The elements of a literal tuple/list of strings, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    elements: List[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            elements.append(element.value)
        else:
            return None
    return elements


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a ``Name`` or dotted ``Attribute`` chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def is_formatted_message(node: ast.AST) -> bool:
    """Whether an exception-message argument carries runtime context.

    F-strings, ``%``/``str.format`` formatting, string concatenation
    involving any of those, and dynamic expressions (names, attributes,
    calls) all count; only a bare string constant does not.
    """
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Constant):
        return False
    if isinstance(node, ast.BinOp):
        return is_formatted_message(node.left) or is_formatted_message(node.right)
    # Names, attributes, calls (including "...".format(...)), subscripts:
    # the message is built from runtime state.
    return True
