"""Markdown link checker for the repo's documentation set.

Walks every ``*.md`` file under the repository (skipping virtualenvs,
caches and ``.git``), extracts the inline links, and verifies:

* **relative links** — the target file or directory exists relative to
  the linking file;
* **anchors** — for ``path#fragment`` (or ``#fragment`` within a file),
  the fragment matches a heading in the target file under GitHub's
  anchor-slug rules (lower-cased, punctuation stripped, spaces to
  hyphens);
* absolute URLs (``http://`` / ``https://``) and ``mailto:`` links are
  recorded but not fetched — the checker is offline by design.

Exit code 0 when every link resolves, 1 otherwise (each broken link is
reported as ``file:line: message``).  Run from the repository root:

    python tools/check_docs.py            # check the whole repo
    python tools/check_docs.py README.md  # check specific files
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["check_paths", "extract_links", "heading_anchors", "main"]

#: Inline markdown links: [text](target) — images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
#: Characters GitHub strips when slugging a heading into an anchor.
_ANCHOR_STRIP_RE = re.compile(r"[^\w\- ]", re.UNICODE)

_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules", ".pytest_cache"}
#: Scraped/generated research inputs at the repo root — not maintained docs.
_SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def extract_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every inline link outside code fences.

    Parameters
    ----------
    text:
        The markdown source.
    """
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def _slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    text = heading.strip().lower()
    # Inline code/emphasis markers vanish in the rendered heading.
    text = text.replace("`", "").replace("*", "")
    # Rendered links contribute only their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = _ANCHOR_STRIP_RE.sub("", text)
    return text.replace(" ", "-")


def heading_anchors(text: str) -> Set[str]:
    """Anchor slugs of every heading in a markdown document.

    Parameters
    ----------
    text:
        The markdown source.
    """
    anchors: Set[str] = set()
    counts: Dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        slug = _slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def _check_file(path: Path, anchors_cache: Dict[Path, Set[str]]) -> List[str]:
    errors: List[str] = []
    text = path.read_text(encoding="utf-8")
    anchors_cache.setdefault(path.resolve(), heading_anchors(text))
    for lineno, target in extract_links(text):
        if _is_external(target):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link: {target} "
                              f"(no such file {base!r} relative to {path.parent})")
                continue
        else:
            resolved = path.resolve()
        if not fragment:
            continue
        if resolved.is_dir() or resolved.suffix.lower() != ".md":
            continue  # anchors into non-markdown targets are not checkable
        if resolved not in anchors_cache:
            anchors_cache[resolved] = heading_anchors(resolved.read_text(encoding="utf-8"))
        if fragment.lower() not in anchors_cache[resolved]:
            errors.append(f"{path}:{lineno}: broken anchor: {target} "
                          f"(no heading #{fragment} in {resolved.name})")
    return errors


def _discover(paths: Sequence[Path]) -> List[Path]:
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.md"):
                if candidate.name in _SKIP_FILES:
                    continue
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate)
        elif path.suffix.lower() == ".md":
            found.add(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {path}")
    return sorted(found)


def check_paths(paths: Sequence[Path]) -> Tuple[int, List[str]]:
    """Check every markdown file under ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to walk.

    Returns
    -------
    tuple
        ``(n_files_checked, errors)``.
    """
    anchors_cache: Dict[Path, Set[str]] = {}
    errors: List[str] = []
    files = _discover(paths)
    for path in files:
        errors.extend(_check_file(path, anchors_cache))
    return len(files), errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: ``python tools/check_docs.py [paths...]``."""
    parser = argparse.ArgumentParser(
        description="Check relative links and anchors in markdown files."
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[Path(".")],
        help="markdown files or directories to check (default: the whole repo)",
    )
    args = parser.parse_args(argv)
    n_files, errors = check_paths(args.paths)
    for error in errors:
        print(error)
    print(f"check_docs: {n_files} markdown file(s) checked, {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
