"""Developer tooling for the repro project (not shipped to end users)."""
