"""Consolidate ``BENCH_*.json`` artifacts into one markdown perf-trend table.

Every smoke benchmark writes a machine-readable payload via
``benchmarks/conftest.write_benchmark_json`` (``{benchmark, passed,
results, argv, versions}``) and CI uploads them per commit — but the
trajectory was upload-only and nothing read it.  This tool closes the
loop: run after the benchmark steps, it collects every payload, pulls
out the comparable performance axes (wall-clock seconds, speedups,
parity error) into a summary table, and appends one flattened
key/value table per benchmark so a commit's full perf surface lives in
a single reviewable artifact.  Diffing two commits' tables is the
trend.

Usage::

    python -m tools.bench_trend [paths...] --output BENCH_TREND.md

``paths`` may mix files and directories (directories are scanned for
``BENCH_*.json``, non-recursively); default is the current directory.
Exit codes: 0 — table written; 1 — no payload found; 2 — a payload was
unreadable or malformed.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Filename pattern produced by the CI benchmark steps.
BENCH_GLOB = "BENCH_*.json"

#: Scalar leaf types kept when flattening a ``results`` payload.
Scalar = Union[bool, int, float, str]


@dataclass(frozen=True)
class BenchPayload:
    """One parsed ``BENCH_*.json`` artifact."""

    path: Path
    benchmark: str
    passed: bool
    metrics: Dict[str, Scalar]
    versions: Dict[str, str]


class PayloadError(ValueError):
    """A benchmark JSON file exists but does not match the shared schema."""


def discover(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Resolve files/directories into a sorted, de-duplicated payload list."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.glob(BENCH_GLOB)))
        elif path.exists():
            found.append(path)
        else:
            raise PayloadError(f"{path}: no such file or directory")
    seen: Dict[Path, None] = {}
    for path in found:
        seen.setdefault(path.resolve(), None)
    return list(seen)


def flatten(results: Mapping[str, object], prefix: str = "") -> Dict[str, Scalar]:
    """Flatten nested result dicts to dotted-key scalars, in key order.

    Non-scalar leaves that are not dicts (lists, ``None``) are rendered
    through ``json.dumps`` so nothing silently disappears from the table.
    """
    flat: Dict[str, Scalar] = {}
    for key, value in results.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten(value, prefix=f"{dotted}."))
        elif isinstance(value, (bool, int, float, str)):
            flat[dotted] = value
        else:
            flat[dotted] = json.dumps(value)
    return flat


def load_payload(path: Path) -> BenchPayload:
    """Parse one artifact, enforcing the ``write_benchmark_json`` schema."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PayloadError(f"{path}: unreadable benchmark JSON ({exc})") from exc
    if not isinstance(raw, dict):
        raise PayloadError(f"{path}: expected a JSON object, got {type(raw).__name__}")
    benchmark = raw.get("benchmark")
    results = raw.get("results")
    if not isinstance(benchmark, str) or not isinstance(results, dict):
        raise PayloadError(
            f"{path}: missing 'benchmark'/'results' keys "
            "(not written by benchmarks/conftest.write_benchmark_json?)"
        )
    versions_raw = raw.get("versions")
    versions = (
        {str(k): str(v) for k, v in versions_raw.items()}
        if isinstance(versions_raw, dict)
        else {}
    )
    return BenchPayload(
        path=path,
        benchmark=benchmark,
        passed=bool(raw.get("passed", False)),
        metrics=flatten(results),
        versions=versions,
    )


def _is_number(value: Scalar) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _leaf(key: str) -> str:
    return key.rsplit(".", 1)[-1]


def seconds_metrics(metrics: Mapping[str, Scalar]) -> Dict[str, float]:
    """Wall-clock metrics: numeric keys whose leaf ends in ``seconds``."""
    return {
        key: float(value)
        for key, value in metrics.items()
        if _leaf(key).endswith("seconds") and _is_number(value)
    }


def speedup_metrics(metrics: Mapping[str, Scalar]) -> Dict[str, float]:
    """Speedup ratios, excluding configured gates (``*_limit``)."""
    return {
        key: float(value)
        for key, value in metrics.items()
        if "speedup" in _leaf(key)
        and not _leaf(key).endswith(("_limit", "_ok"))
        and _is_number(value)
    }


def parity_metrics(metrics: Mapping[str, Scalar]) -> Dict[str, float]:
    """Numerical-parity errors, excluding tolerances (``*_tol``/``*_limit``)."""
    return {
        key: float(value)
        for key, value in metrics.items()
        if "parity" in _leaf(key)
        and not _leaf(key).endswith(("_tol", "_limit", "_ok"))
        and _is_number(value)
    }


def _fmt(value: Scalar) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value).replace("|", "\\|")


def _fmt_named_extreme(metrics: Mapping[str, float], *, worst_high: bool) -> str:
    """Render the most pessimistic entry as ``value (leaf-key)``."""
    if not metrics:
        return "—"
    key, value = (max if worst_high else min)(metrics.items(), key=lambda kv: kv[1])
    return f"{_fmt(value)} ({_leaf(key)})"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def render_markdown(payloads: Sequence[BenchPayload], *, label: Optional[str] = None) -> str:
    """Render the consolidated trend report as GitHub-flavoured markdown."""
    lines: List[str] = ["# Benchmark perf trend"]
    if label:
        lines.append(f"\nCommit: `{label}`")
    versions: Dict[str, str] = {}
    for payload in payloads:
        versions.update(payload.versions)
    if versions:
        stack = ", ".join(f"{name} {ver}" for name, ver in sorted(versions.items()))
        lines.append(f"\nStack: {stack}")

    summary_rows: List[List[str]] = []
    for payload in payloads:
        seconds = seconds_metrics(payload.metrics)
        summary_rows.append(
            [
                payload.benchmark,
                "pass" if payload.passed else "**FAIL**",
                _fmt(sum(seconds.values())) if seconds else "—",
                _fmt_named_extreme(speedup_metrics(payload.metrics), worst_high=False),
                _fmt_named_extreme(parity_metrics(payload.metrics), worst_high=True),
            ]
        )
    lines.append("")
    lines.extend(
        _table(
            ["benchmark", "status", "total timed (s)", "min speedup", "max parity err"],
            summary_rows,
        )
    )

    for payload in payloads:
        lines.append(f"\n## {payload.benchmark}")
        lines.append(f"\nSource: `{payload.path.name}`")
        lines.append("")
        lines.extend(
            _table(
                ["metric", "value"],
                [[key.replace("|", "\\|"), _fmt(value)] for key, value in payload.metrics.items()],
            )
        )
    lines.append("")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench-trend",
        description=f"Consolidate {BENCH_GLOB} artifacts into a markdown perf-trend table.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help=f"files or directories to scan for {BENCH_GLOB} (default: .)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the markdown table here (default: stdout only)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="commit identifier to stamp into the report header",
    )
    return parser


def consolidate(
    paths: Sequence[Union[str, Path]], *, label: Optional[str] = None
) -> Tuple[str, List[BenchPayload]]:
    """Discover, parse and render; the core pipeline behind ``main``."""
    payloads = [load_payload(path) for path in discover(paths)]
    payloads.sort(key=lambda p: p.benchmark)
    return render_markdown(payloads, label=label), payloads


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        report, payloads = consolidate(args.paths, label=args.label)
    except PayloadError as exc:
        print(f"bench-trend: {exc}", file=sys.stderr)
        return 2
    if not payloads:
        print(f"bench-trend: no {BENCH_GLOB} found under {args.paths}", file=sys.stderr)
        return 1
    try:
        print(report)
    except BrokenPipeError:  # downstream pager/head closed early; not an error
        pass
    if args.output is not None:
        Path(args.output).write_text(report)
        print(f"bench-trend: table written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
